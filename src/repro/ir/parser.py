"""A tiny textual format for writing instruction sequences in examples/tests.

The format is line oriented::

    # comment
    block CL.18
      L4AU  op=load  defs=gr6,gr7 uses=gr7      loads=x  lat=1 fu=memory
      ST4U  op=store defs=gr5     uses=gr5,gr0  stores=y lat=1 fu=memory
      C4    op=cmp   defs=cr1     uses=gr6               lat=1
      M     op=mul   defs=gr0     uses=gr6,gr0           lat=4
      BT    op=bt                 uses=cr1               branch

Each instruction line starts with a unique name followed by ``key=value``
attributes (``op``, ``defs``, ``uses``, ``loads``, ``stores``, ``lat``,
``time``, ``fu``) and the bare flag ``branch``.  ``block NAME`` opens a new
basic block.  :func:`parse_program` returns the named instruction sequences;
:func:`parse_trace` additionally derives all dependence edges via
:mod:`repro.ir.builder`.
"""

from __future__ import annotations

import re

from .basicblock import Trace
from .builder import build_trace
from .instruction import ANY, Instruction


class ParseError(ValueError):
    """Raised on malformed program text, with a 1-based line number and —
    when the error is attributable to a specific token — a 1-based column."""

    def __init__(self, lineno: int, message: str, col: int | None = None) -> None:
        where = f"line {lineno}" if col is None else f"line {lineno}, column {col}"
        super().__init__(f"{where}: {message}")
        self.lineno = lineno
        self.col = col


_LIST_KEYS = {"defs", "uses", "loads", "stores"}
_INT_KEYS = {"lat", "time"}
_STR_KEYS = {"op", "fu"}

#: A token plus the 1-based column its first character sits at.
_TOKEN_RE = re.compile(r"\S+")


def _tokenize(raw: str) -> list[tuple[int, str]]:
    """Split a comment-stripped source line into ``(column, token)`` pairs,
    preserving each token's position in the original line."""
    code = raw.split("#", 1)[0]
    return [(m.start() + 1, m.group()) for m in _TOKEN_RE.finditer(code)]


def _parse_instruction(
    lineno: int, tokens: list[tuple[int, str]], seen: set[str]
) -> Instruction:
    name_col, name = tokens[0]
    if name in seen:
        raise ParseError(
            lineno, f"duplicate instruction name {name!r}", col=name_col
        )
    attrs: dict[str, object] = {}
    is_branch = False
    for col, tok in tokens[1:]:
        if tok == "branch":
            is_branch = True
            continue
        if "=" not in tok:
            raise ParseError(lineno, f"expected key=value, got {tok!r}", col=col)
        key, _, value = tok.partition("=")
        if key in _LIST_KEYS:
            attrs[key] = tuple(v for v in value.split(",") if v)
        elif key in _INT_KEYS:
            try:
                attrs[key] = int(value)
            except ValueError:
                raise ParseError(
                    lineno,
                    f"{key} needs an integer, got {value!r}",
                    col=col + len(key) + 1,  # point at the value, not the key
                )
        elif key in _STR_KEYS:
            attrs[key] = value
        else:
            raise ParseError(lineno, f"unknown attribute {key!r}", col=col)
    try:
        return Instruction(
            name=name,
            opcode=str(attrs.get("op", "op")),
            reads=attrs.get("uses", ()),  # type: ignore[arg-type]
            writes=attrs.get("defs", ()),  # type: ignore[arg-type]
            loads=attrs.get("loads", ()),  # type: ignore[arg-type]
            stores=attrs.get("stores", ()),  # type: ignore[arg-type]
            exec_time=int(attrs.get("time", 1)),  # type: ignore[arg-type]
            latency=int(attrs.get("lat", 1)),  # type: ignore[arg-type]
            fu_class=str(attrs.get("fu", ANY)),
            is_branch=is_branch,
        )
    except ValueError as exc:
        raise ParseError(lineno, str(exc), col=name_col) from exc


def parse_program(text: str) -> list[tuple[str, list[Instruction]]]:
    """Parse program text into ``[(block_name, instructions), ...]``."""
    blocks: list[tuple[str, list[Instruction]]] = []
    seen: set[str] = set()
    current: list[Instruction] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        tokens = _tokenize(raw)
        if not tokens:
            continue
        if tokens[0][1] == "block":
            if len(tokens) != 2:
                raise ParseError(
                    lineno, "block takes exactly one name", col=tokens[0][0]
                )
            name_col, block_name = tokens[1]
            if any(name == block_name for name, _ in blocks):
                raise ParseError(
                    lineno, f"duplicate block name {block_name!r}", col=name_col
                )
            current = []
            blocks.append((block_name, current))
            continue
        if current is None:
            raise ParseError(
                lineno,
                "instruction before any 'block' directive",
                col=tokens[0][0],
            )
        instr = _parse_instruction(lineno, tokens, seen)
        seen.add(instr.name)
        current.append(instr)
    if not blocks:
        raise ParseError(1, "empty program: no blocks")
    for name, instrs in blocks:
        if not instrs:
            raise ParseError(1, f"block {name!r} has no instructions")
    return blocks


def parse_trace(text: str) -> Trace:
    """Parse program text and build the trace with derived dependence edges."""
    return build_trace(parse_program(text))
