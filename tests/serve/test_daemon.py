"""Tests for the asyncio daemon: both transports, batching, control ops,
malformed input."""

import json

import pytest

from repro.machine.presets import PAPER_CORE
from repro.serve.client import ScheduleClient, http_get, http_schedule
from repro.serve.daemon import ScheduleServer, ServerHandle
from repro.serve.protocol import ScheduleRequest
from repro.serve.service import ScheduleService
from repro.workloads.traces import random_trace


def _doc(seed=0, rid=None):
    trace = random_trace(2, (3, 4), cross_probability=0.2, seed=seed)
    return ScheduleRequest(
        trace=trace, machine=PAPER_CORE, id=rid
    ).to_dict()


@pytest.fixture()
def server(tmp_path):
    service = ScheduleService(spool_dir=tmp_path / "spool")
    srv = ScheduleServer(
        service,
        socket_path=tmp_path / "serve.sock",
        port=0,
        batch_window_s=0.001,
    )
    with ServerHandle(srv):
        yield srv


class TestUnixTransport:
    def test_schedule_miss_then_hit(self, server):
        doc = _doc(seed=1, rid="a")
        with ScheduleClient(server.socket_path) as client:
            first = client.call(doc)
            second = client.call(dict(doc, id="b"))
        assert first["ok"] and first["cached"] is False
        assert second["ok"] and second["cached"] is True
        assert first["id"] == "a" and second["id"] == "b"
        assert first["block_orders"] == second["block_orders"]

    def test_control_ops(self, server):
        with ScheduleClient(server.socket_path) as client:
            assert client.ping() == {"ok": True, "op": "ping"}
            client.call(_doc(seed=2))
            stats = client.stats()
            assert stats["requests"] == 1
            assert "serve_cache_miss_total" in client.metrics_text()

    def test_bad_json_line_gets_error_response(self, server):
        with ScheduleClient(server.socket_path) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            response = json.loads(client._file.readline())
        assert response["ok"] is False and "bad JSON" in response["error"]

    def test_unknown_op(self, server):
        with ScheduleClient(server.socket_path) as client:
            out = client.call({"op": "frobnicate"})
        assert out["ok"] is False

    def test_pipelined_requests_answered_in_order(self, server):
        docs = [_doc(seed=s, rid=f"r{s}") for s in range(6)]
        with ScheduleClient(server.socket_path) as client:
            for doc in docs:
                client._file.write(json.dumps(doc).encode() + b"\n")
            client._file.flush()
            responses = [json.loads(client._file.readline()) for _ in docs]
        assert [r["id"] for r in responses] == [f"r{s}" for s in range(6)]
        assert all(r["ok"] for r in responses)


class TestHttpTransport:
    def test_healthz(self, server):
        status, body = http_get(server.host, server.port, "/healthz")
        assert status == 200 and body == b"ok\n"

    def test_schedule_and_metrics(self, server):
        status, response = http_schedule(server.host, server.port, _doc(seed=3))
        assert status == 200 and response["ok"]
        status, body = http_get(server.host, server.port, "/metrics")
        assert status == 200
        assert b"repro_serve_requests_total" in body

    def test_batch_post(self, server):
        doc = _doc(seed=4)
        status, out = http_schedule(
            server.host, server.port,
            {"requests": [doc, dict(doc, id="dup")]},
        )
        assert status == 200
        responses = out["responses"]
        assert len(responses) == 2 and all(r["ok"] for r in responses)
        # The pair shares a digest: exactly one computed, one cache-served.
        assert sorted(r["cached"] for r in responses) == [False, True]

    def test_stats_endpoint(self, server):
        http_schedule(server.host, server.port, _doc(seed=5))
        status, body = http_get(server.host, server.port, "/stats")
        assert status == 200
        assert json.loads(body)["requests"] >= 1

    def test_unknown_path_404(self, server):
        status, _ = http_get(server.host, server.port, "/nope")
        assert status == 404


class TestLifecycle:
    def test_requires_some_transport(self):
        with pytest.raises(ValueError, match="socket path and/or a TCP port"):
            ScheduleServer(ScheduleService())

    def test_socket_file_removed_on_stop(self, tmp_path):
        path = tmp_path / "s.sock"
        srv = ScheduleServer(ScheduleService(), socket_path=path)
        with ServerHandle(srv):
            assert path.exists()
        assert not path.exists()
