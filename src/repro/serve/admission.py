"""Admission control and circuit breaking for the scheduling daemon.

The daemon's north star is heavy online traffic, and a server that accepts
every request fails worst exactly when it matters: an unbounded queue turns
overload into unbounded memory and unbounded latency, and a broken
scheduler class turns every request into a slow failure.  This module
provides the two load-safety primitives the serve tier threads through
both transports:

- :class:`AdmissionController` — a bounded admission ledger.  Every
  request must be admitted before it may enter the batch queue; admission
  fails (the request is **shed** with a structured ``overloaded`` error)
  when the queue is at capacity or the request's transport already has too
  many requests in flight.  Between "healthy" and "shedding" sits
  **brownout**: above a configurable queue-depth fraction the daemon stops
  widening batches and disables the debug endpoints, shedding optional
  work before it sheds requests.
- :class:`CircuitBreaker` / :class:`BreakerBoard` — per-scheduler-class
  failure isolation.  K consecutive compute failures (crashes, timeouts,
  guard degradations that indicate adversity rather than policy) open the
  breaker; while open, cache misses for that scheduler short-circuit with
  a structured ``breaker_open`` error instead of burning pool capacity;
  after a cooldown one half-open probe is admitted, and its outcome closes
  or re-opens the breaker.

Everything here is transport-agnostic bookkeeping guarded by a lock: the
asyncio thread admits and releases, the batch-executor thread records
compute outcomes, and ``/stats`` snapshots from whichever thread asks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry

#: Structured protocol error codes the serving tier emits (the ``code``
#: field of an error response; see :func:`repro.serve.protocol
#: .error_response`).
SHED_QUEUE_FULL = "queue_full"
SHED_INFLIGHT_LIMIT = "inflight_limit"

#: Circuit-breaker states (also exposed as 0/1/2 gauges for Prometheus).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Numeric encoding of breaker states for the ``/metrics`` gauges.
BREAKER_STATE_CODES = {
    BREAKER_CLOSED: 0,
    BREAKER_OPEN: 1,
    BREAKER_HALF_OPEN: 2,
}


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the daemon's admission policy.

    ``queue_capacity`` bounds the batch queue: requests beyond it are shed.
    ``inflight_limit`` bounds admitted-but-unanswered requests *per
    transport* (``unix`` / ``http``), so one greedy transport cannot starve
    the other.  ``brownout_fraction`` is the queue-depth fraction at which
    brownout engages; ``retry_after_s`` is the advisory retry hint stamped
    on shed responses (and the HTTP ``Retry-After`` header).
    """

    queue_capacity: int = 128
    inflight_limit: int = 256
    brownout_fraction: float = 0.75
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.inflight_limit < 1:
            raise ValueError(
                f"inflight_limit must be >= 1, got {self.inflight_limit}"
            )
        if not 0.0 < self.brownout_fraction <= 1.0:
            raise ValueError(
                f"brownout_fraction must be in (0, 1], got "
                f"{self.brownout_fraction}"
            )
        if self.retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be > 0, got {self.retry_after_s}"
            )


class AdmissionController:
    """Bounded admission ledger shared by both transports.

    Protocol: :meth:`try_admit` before enqueueing (``None`` means admitted,
    a string is the shed reason), :meth:`note_dequeued` when the batch loop
    moves a request from the queue to execution, :meth:`release` when its
    response future resolves.  ``queue_depth`` can therefore never exceed
    ``config.queue_capacity`` — the property the bounded-queue test pins.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.registry = registry
        self._lock = threading.Lock()
        self._depth = 0
        self._inflight: dict[str, int] = {}
        self.accepted = 0
        self.shed_total = 0
        #: Shed counts by reason (queue_full / inflight_limit).
        self.shed: dict[str, int] = {}
        self.peak_depth = 0
        self.peak_inflight = 0
        #: Times the controller transitioned healthy -> brownout.
        self.brownouts = 0
        self._browned_out = False

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc()

    # -- admission ------------------------------------------------------------

    def try_admit(self, transport: str) -> str | None:
        """Admit one request from ``transport``; returns ``None`` on
        success or the shed reason when the request must be rejected."""
        with self._lock:
            if self._depth >= self.config.queue_capacity:
                reason = SHED_QUEUE_FULL
            elif (
                self._inflight.get(transport, 0) >= self.config.inflight_limit
            ):
                reason = SHED_INFLIGHT_LIMIT
            else:
                self.accepted += 1
                self._depth += 1
                self._inflight[transport] = (
                    self._inflight.get(transport, 0) + 1
                )
                self.peak_depth = max(self.peak_depth, self._depth)
                total = sum(self._inflight.values())
                self.peak_inflight = max(self.peak_inflight, total)
                self._note_brownout_locked()
                return None
            self.shed_total += 1
            self.shed[reason] = self.shed.get(reason, 0) + 1
        self._count("serve.shed")
        self._count(f"serve.shed.{reason}")
        return reason

    def note_dequeued(self, n: int = 1) -> None:
        """The batch loop moved ``n`` requests from the queue into a batch
        (they stay inflight until their futures resolve)."""
        with self._lock:
            self._depth = max(0, self._depth - n)
            self._note_brownout_locked()

    def release(self, transport: str) -> None:
        """One admitted request's response future resolved."""
        with self._lock:
            count = self._inflight.get(transport, 0)
            if count <= 1:
                self._inflight.pop(transport, None)
            else:
                self._inflight[transport] = count - 1

    def _note_brownout_locked(self) -> None:
        browned = self._depth >= self._brownout_depth
        if browned and not self._browned_out:
            self.brownouts += 1
        self._browned_out = browned

    # -- state ----------------------------------------------------------------

    @property
    def _brownout_depth(self) -> int:
        return max(
            1,
            int(self.config.queue_capacity * self.config.brownout_fraction),
        )

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._depth

    def inflight(self, transport: str | None = None) -> int:
        with self._lock:
            if transport is not None:
                return self._inflight.get(transport, 0)
            return sum(self._inflight.values())

    @property
    def brownout(self) -> bool:
        """True while queue depth is at or above the brownout threshold —
        the daemon stops widening batches and disables debug endpoints."""
        with self._lock:
            return self._depth >= self._brownout_depth

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "queue_capacity": self.config.queue_capacity,
                "inflight_limit": self.config.inflight_limit,
                "queue_depth": self._depth,
                "peak_depth": self.peak_depth,
                "inflight": dict(sorted(self._inflight.items())),
                "inflight_total": sum(self._inflight.values()),
                "peak_inflight": self.peak_inflight,
                "accepted": self.accepted,
                "shed_total": self.shed_total,
                "shed": dict(sorted(self.shed.items())),
                "brownout": self._depth >= self._brownout_depth,
                "brownouts": self.brownouts,
                "retry_after_s": self.config.retry_after_s,
            }

    def publish(self, registry: MetricsRegistry) -> None:
        """Push the live admission gauges into ``registry`` (scrape-time,
        like the service's other derived gauges)."""
        snap = self.snapshot()
        registry.gauge("serve.queue_depth").set(snap["queue_depth"])
        registry.gauge("serve.queue_capacity").set(snap["queue_capacity"])
        registry.gauge("serve.inflight").set(snap["inflight_total"])
        registry.gauge("serve.brownout").set(1 if snap["brownout"] else 0)
        for transport, count in snap["inflight"].items():
            registry.gauge(f"serve.inflight.{transport}").set(count)


class CircuitBreaker:
    """Closed -> open after K consecutive failures -> half-open probe.

    While **closed**, every call is allowed and consecutive failures are
    counted (any success resets the streak).  After ``failure_threshold``
    consecutive failures the breaker **opens**: :meth:`allow` refuses (the
    caller answers a structured ``breaker_open`` error) until
    ``cooldown_s`` has elapsed, at which point exactly one probe call is
    admitted (**half-open**).  The probe's success closes the breaker; its
    failure re-opens it with a fresh cooldown.

    ``clock`` is injectable for deterministic lifecycle tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_inflight = False
        self.opened = 0
        self.reclosed = 0
        self.short_circuits = 0
        self.failures = 0
        self.successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a compute for this class proceed right now?  Refusals are
        counted as short-circuits."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                if (
                    self._opened_at is not None
                    and self._clock() - self._opened_at >= self.cooldown_s
                ):
                    self._state = BREAKER_HALF_OPEN
                    self._probe_inflight = True
                    return True
                self.short_circuits += 1
                return False
            # half-open: exactly one probe at a time
            if not self._probe_inflight:
                self._probe_inflight = True
                return True
            self.short_circuits += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state != BREAKER_CLOSED:
                self._state = BREAKER_CLOSED
                self._opened_at = None
                self.reclosed += 1
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if self._state == BREAKER_HALF_OPEN:
                # Failed probe: straight back to open, fresh cooldown.
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self.opened += 1
            elif (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self.opened += 1
            self._probe_inflight = False

    def retry_after_s(self) -> float:
        """Seconds until the next probe would be admitted (0 when not
        open)."""
        with self._lock:
            if self._state != BREAKER_OPEN or self._opened_at is None:
                return 0.0
            return max(
                0.0, self.cooldown_s - (self._clock() - self._opened_at)
            )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "opened": self.opened,
                "reclosed": self.reclosed,
                "short_circuits": self.short_circuits,
                "failures": self.failures,
                "successes": self.successes,
            }


class BreakerBoard:
    """Lazily-created per-scheduler-class circuit breakers."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    cooldown_s=self.cooldown_s,
                    clock=self._clock,
                )
                self._breakers[name] = breaker
            return breaker

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._breakers)

    def snapshot(self) -> dict:
        with self._lock:
            items = list(self._breakers.items())
        return {name: breaker.snapshot() for name, breaker in sorted(items)}

    def short_circuits(self) -> int:
        with self._lock:
            items = list(self._breakers.values())
        return sum(b.short_circuits for b in items)

    def publish(self, registry: MetricsRegistry) -> None:
        """Breaker state/transition gauges and counters for ``/metrics``:
        ``serve.breaker.<class>.state`` is 0 closed / 1 open / 2
        half-open."""
        for name, snap in self.snapshot().items():
            registry.gauge(f"serve.breaker.{name}.state").set(
                BREAKER_STATE_CODES[snap["state"]]
            )
            registry.gauge(f"serve.breaker.{name}.opened").set(snap["opened"])
            registry.gauge(f"serve.breaker.{name}.reclosed").set(
                snap["reclosed"]
            )
            registry.gauge(f"serve.breaker.{name}.short_circuits").set(
                snap["short_circuits"]
            )
