"""Unit tests for the Hennessy-Gross interlock-avoiding scheduler."""

import pytest

from repro.ir import graph_from_edges
from repro.machine import paper_machine
from repro.schedulers import hennessy_gross_schedule, optimal_makespan
from repro.workloads import random_dag


class TestInterlockAvoidance:
    def test_prefers_candidate_that_keeps_pipeline_busy(self):
        """Two ready roots: issuing `ld` (latency 2) first leaves `f`
        issueable next cycle; issuing `f` first forces a later stall."""
        g = graph_from_edges([("ld", "use", 2)], nodes=["f", "ld", "use"])
        s = hennessy_gross_schedule(g, paper_machine(1))
        assert s.start("ld") == 0
        assert s.makespan == 4  # ld f _ use? ld@0 f@1 use@3 -> 4

    def test_valid_on_random_graphs(self):
        for seed in range(6):
            g = random_dag(
                18, edge_probability=0.25, latencies=(0, 1, 2),
                exec_times=(1, 2), seed=seed,
            )
            hennessy_gross_schedule(g, paper_machine(1)).validate()

    @pytest.mark.parametrize("seed", range(8))
    def test_competitive_on_01_instances(self, seed):
        """Not provably optimal, but must stay within one cycle of optimum
        on small 0/1 instances (it does on this pinned corpus)."""
        g = random_dag(8, edge_probability=0.3, latencies=(0, 1), seed=seed)
        s = hennessy_gross_schedule(g, paper_machine(1))
        assert s.makespan <= optimal_makespan(g) + 1

    def test_incompatible_machine_rejected(self):
        from repro.machine import MachineModel

        g = graph_from_edges([], nodes=["f"], fu_classes={"f": "float"})
        with pytest.raises(ValueError, match="lacks"):
            hennessy_gross_schedule(
                g, MachineModel(window_size=1, fu_counts={"fixed": 1})
            )
