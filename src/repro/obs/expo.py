"""Prometheus text exposition of :class:`~repro.obs.metrics.MetricsRegistry`
and the ``repro top`` live terminal view.

:func:`prometheus_text` renders a registry in the Prometheus text exposition
format (version 0.0.4): counters become ``<ns>_<name>_total`` series,
gauges plain series, and histograms the conventional cumulative
``_bucket{le="..."}`` / ``_sum`` / ``_count`` triple.  Metric names are
sanitised (dots and other invalid characters to ``_``); optional ``labels``
are attached to every series — e.g. ``{"trace_id": ...}`` for a sweep.

:func:`top_snapshot` renders one frame of the ``repro top`` view from a
spool directory: per-phase call counts, completion rates, p50/p90/p99 span
latencies, and the ``guard.*`` / ``faults.*`` / ``sweep.*`` reliability
counters — readable while a sweep is still running, because workers flush
their spool per completed cell.
"""

from __future__ import annotations

import math
import re
import time
from typing import Mapping, Sequence

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .pipeline import SpoolMerge, merge_spools

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """A valid Prometheus metric name: invalid chars to ``_``, leading
    digits prefixed."""
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _render_labels(labels: Mapping[str, object] | None) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        k = _LABEL_RE.sub("_", str(key))
        # The text exposition format requires escaping backslash, double
        # quote AND newline inside label values — a raw newline would tear
        # the series line in two and corrupt the whole exposition.
        v = (
            str(labels[key])
            .replace("\\", r"\\")
            .replace('"', r"\"")
            .replace("\n", r"\n")
        )
        parts.append(f'{k}="{v}"')
    return "{" + ",".join(parts) + "}"


def _merge_label_sets(
    base: str, extra: Mapping[str, object] | None, **more
) -> str:
    merged: dict[str, object] = dict(extra or {})
    merged.update(more)
    return _render_labels(merged)


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(
    registry: MetricsRegistry,
    namespace: str = "repro",
    labels: Mapping[str, object] | None = None,
) -> str:
    """The registry in Prometheus text exposition format, sorted by metric
    name for deterministic output."""
    ns = sanitize_metric_name(namespace)
    lines: list[str] = []
    for name in registry.names():
        metric = registry[name]
        base = f"{ns}_{sanitize_metric_name(name)}" if ns else sanitize_metric_name(name)
        if isinstance(metric, Counter):
            series = f"{base}_total"
            lines.append(f"# HELP {series} Counter {name!r}.")
            lines.append(f"# TYPE {series} counter")
            lines.append(f"{series}{_render_labels(labels)} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {base} Gauge {name!r}.")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base}{_render_labels(labels)} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {base} Histogram {name!r}.")
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                le = _merge_label_sets(base, labels, le=_fmt(float(bound)))
                lines.append(f"{base}_bucket{le} {cumulative}")
            inf = _merge_label_sets(base, labels, le="+Inf")
            lines.append(f"{base}_bucket{inf} {metric.count}")
            lines.append(
                f"{base}_sum{_render_labels(labels)} {_fmt(metric.total)}"
            )
            lines.append(
                f"{base}_count{_render_labels(labels)} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# -- repro top ----------------------------------------------------------------


def _percentile(sorted_values: Sequence[float], p: float) -> float | None:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(len(sorted_values) * p / 100.0))
    return sorted_values[rank - 1]


#: Counter prefixes surfaced in the ``repro top`` reliability section.
TOP_COUNTER_PREFIXES = ("guard.", "faults.", "sweep.", "fuzz.")


def top_snapshot(
    merge: SpoolMerge,
    previous: SpoolMerge | None = None,
    dt_s: float | None = None,
    width: int = 78,
) -> str:
    """One rendered frame of the ``repro top`` view.

    ``previous``/``dt_s`` (the prior snapshot and the seconds since it) turn
    absolute counts into rates; without them the rate column shows ``-``.
    """
    lines: list[str] = []
    cells = len(merge.cells)
    pids = merge.pids
    completed = sum(1 for c in merge.cells if c.ok)
    head = (
        f"cells {cells} ({completed} ok)  workers {len(pids)}"
        f"  pids {','.join(str(p) for p in pids[:8])}"
    )
    if previous is not None and dt_s and dt_s > 0:
        rate = (cells - len(previous.cells)) / dt_s
        head += f"  throughput {rate:.1f} cells/s"
    lines.append(head[:width])
    lines.append("-" * min(width, len(head)))

    durations = merge.span_durations()
    prev_counts = (
        {name: len(v) for name, v in previous.span_durations().items()}
        if previous is not None
        else {}
    )
    if durations:
        lines.append(
            f"{'phase':<24} {'calls':>7} {'rate/s':>8} "
            f"{'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8} {'total s':>9}"
        )
        for name in sorted(durations, key=lambda n: -sum(durations[n])):
            values = sorted(durations[name])
            calls = len(values)
            if previous is not None and dt_s and dt_s > 0:
                rate = f"{(calls - prev_counts.get(name, 0)) / dt_s:8.1f}"
            else:
                rate = f"{'-':>8}"
            p50, p90, p99 = (
                _percentile(values, 50),
                _percentile(values, 90),
                _percentile(values, 99),
            )
            lines.append(
                f"{name[:24]:<24} {calls:>7} {rate} "
                f"{p50 * 1e3:8.2f} {p90 * 1e3:8.2f} {p99 * 1e3:8.2f} "
                f"{sum(values):9.3f}"
            )
    else:
        lines.append("(no spans spooled yet)")

    counters = merge.counters
    interesting = {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(TOP_COUNTER_PREFIXES)
    }
    if interesting:
        lines.append("")
        lines.append("reliability counters:")
        for name, value in interesting.items():
            delta = ""
            if previous is not None:
                prev = previous.counters.get(name, 0)
                if value != prev:
                    delta = f"  (+{value - prev})"
            lines.append(f"  {name:<38} {value:>10}{delta}")
    return "\n".join(lines)


def daemon_snapshot(
    doc: Mapping,
    previous: Mapping | None = None,
    dt_s: float | None = None,
    width: int = 78,
) -> str:
    """One rendered frame of ``repro top --connect`` from a daemon's
    ``/debug/top`` document (``{"stats": ..., "metrics": ...}``).

    Same layout philosophy as :func:`top_snapshot`, but sourced from the
    live registry instead of spool files: request/error/uptime header,
    per-class latency histograms with p50/p90/p99, cache and SLO health,
    and the ``serve.*`` counters.
    """
    stats = doc.get("stats", {}) or {}
    metrics = doc.get("metrics", {}) or {}
    lines: list[str] = []
    requests = stats.get("requests", 0)
    cache = stats.get("cache", {}) or {}
    ratio = stats.get("cache_hit_ratio")
    head = (
        f"requests {requests}  errors {stats.get('errors', 0)}"
        f"  degraded {stats.get('degraded', 0)}"
        f"  batches {stats.get('batches', 0)}"
        f"  uptime {stats.get('uptime_s', 0.0):.0f}s"
        f"  cache {cache.get('hits', 0)}/{cache.get('misses', 0)}"
        + (f" ({ratio * 100:.0f}% hit)" if ratio is not None else "")
    )
    if previous is not None and dt_s and dt_s > 0:
        prev_requests = (previous.get("stats", {}) or {}).get("requests", 0)
        head += f"  throughput {(requests - prev_requests) / dt_s:.1f} req/s"
    lines.append(head[:width])
    lines.append("-" * min(width, len(head)))

    transports = stats.get("transports") or {}
    if transports:
        lines.append(
            "transports: "
            + "  ".join(f"{k}={v}" for k, v in sorted(transports.items()))
        )
    admission = stats.get("admission") or {}
    if admission:
        lines.append(
            f"admission: queue {admission.get('queue_depth', 0)}"
            f"/{admission.get('queue_capacity', 0)}"
            f" (peak {admission.get('peak_depth', 0)})"
            f"  inflight {admission.get('inflight_total', 0)}"
            f"  shed {admission.get('shed_total', 0)}"
            f"  deadline_exceeded {stats.get('deadline_exceeded', 0)}"
            + ("  BROWNOUT" if admission.get("brownout") else "")
        )
    breakers = stats.get("breakers") or {}
    if breakers:
        parts = [
            f"{name}={snap.get('state', '?')}"
            for name, snap in sorted(breakers.items())
        ]
        line = "breakers: " + "  ".join(parts)
        opened = sum(s.get("opened", 0) for s in breakers.values())
        if opened:
            line += f"  (opened {opened}x)"
        lines.append(line)
    slo = stats.get("slo") or {}
    if slo:
        lines.append(
            f"slo: objective {slo.get('objective')}"
            f"  bad {slo.get('bad', 0)}/{slo.get('total', 0)}"
            f"  burn fast {slo.get('fast_burn_rate', 0.0):.2f}x"
            f" / slow {slo.get('slow_burn_rate', 0.0):.2f}x"
            + ("  PAGE" if slo.get("page") else "")
            + ("  ticket" if slo.get("ticket") else "")
        )
    traces = stats.get("traces") or {}
    if traces:
        p99 = traces.get("p99_s")
        lines.append(
            f"traces: {traces.get('added', 0)} seen"
            f"  rings recent={traces.get('recent', 0)}"
            f" slow={traces.get('slow', 0)}"
            f" errors={traces.get('errors', 0)}"
            f" degraded={traces.get('degraded', 0)}"
            + (f"  p99 {p99 * 1e3:.2f} ms" if p99 is not None else "")
        )

    histograms = {
        name: value
        for name, value in metrics.items()
        if isinstance(value, Mapping) and "count" in value
    }
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':<34} {'count':>7} {'rate/s':>8} "
            f"{'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8}"
        )
        prev_metrics = (previous or {}).get("metrics", {}) or {}
        for name in sorted(histograms):
            value = histograms[name]
            count = value.get("count", 0)
            if previous is not None and dt_s and dt_s > 0:
                prev = prev_metrics.get(name) or {}
                rate = f"{(count - prev.get('count', 0)) / dt_s:8.1f}"
            else:
                rate = f"{'-':>8}"
            cells = []
            for p in ("p50", "p90", "p99"):
                v = value.get(p)
                cells.append(f"{v * 1e3:8.2f}" if v is not None else f"{'-':>8}")
            lines.append(
                f"{name[:34]:<34} {count:>7} {rate} " + " ".join(cells)
            )

    counters = {
        name: value
        for name, value in sorted(metrics.items())
        if isinstance(value, int) and name.startswith("serve.")
    }
    if counters:
        lines.append("")
        lines.append("serve counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<38} {value:>10}")
    return "\n".join(lines)


def watch_daemon(
    fetch,
    interval_s: float = 1.0,
    iterations: int | None = None,
    out=None,
    clock=time.monotonic,
    sleep=time.sleep,
    label: str = "",
) -> int:
    """The ``repro top --connect`` loop: call ``fetch()`` (which returns a
    ``/debug/top`` document) every ``interval_s`` and render a fresh
    :func:`daemon_snapshot` frame.  Returns the number of frames."""
    import sys

    out = out or sys.stdout
    frames = 0
    previous: Mapping | None = None
    last_t: float | None = None
    try:
        while iterations is None or frames < iterations:
            doc = fetch()
            now = clock()
            dt = (now - last_t) if last_t is not None else None
            if frames:
                out.write("\x1b[2J\x1b[H")
            out.write(
                f"repro top — {label or 'daemon'}  "
                f"(refresh {interval_s:g}s, frame {frames + 1})\n"
            )
            out.write(daemon_snapshot(doc, previous, dt) + "\n")
            out.flush()
            previous, last_t = doc, now
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames


def watch_spools(
    directory: str,
    interval_s: float = 1.0,
    iterations: int | None = None,
    out=None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """The ``repro top`` loop: re-read ``directory`` every ``interval_s``
    and print a fresh snapshot (ANSI clear between frames).  ``iterations``
    bounds the number of frames (``None`` = until interrupted).  Returns the
    number of frames rendered."""
    import sys

    out = out or sys.stdout
    frames = 0
    previous: SpoolMerge | None = None
    last_t: float | None = None
    try:
        while iterations is None or frames < iterations:
            merge = merge_spools(directory)
            now = clock()
            dt = (now - last_t) if last_t is not None else None
            if frames:
                out.write("\x1b[2J\x1b[H")
            out.write(
                f"repro top — {directory}  "
                f"(refresh {interval_s:g}s, frame {frames + 1})\n"
            )
            out.write(top_snapshot(merge, previous, dt) + "\n")
            out.flush()
            previous, last_t = merge, now
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
