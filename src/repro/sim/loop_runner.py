"""Executing loops on the lookahead hardware and steady-state analysis.

Paper §5: "The completion time of n iterations of the loop on a machine with
hardware lookahead equals the completion time that would be obtained if the
loop was completely unrolled (ignoring the cost of the loop-back branches)".
:func:`simulate_loop_order` implements exactly that: unroll, repeat the
per-iteration instruction order, run the window simulator.

The *periodic* steady-state view used in the paper's Figure 3 discussion
("this schedule executes one iteration every 7 cycles") treats the block
schedule as a fixed pattern repeated every II cycles;
:func:`periodic_initiation_interval` computes the smallest feasible II for a
given block schedule, and :func:`simulated_initiation_interval` measures the
asymptotic per-iteration cost under the window model.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..ir.basicblock import LoopTrace
from ..ir.instruction import ANY
from ..ir.loopgraph import LoopGraph, instance_name
from ..machine.model import MachineModel, single_unit_machine
from ..obs import recorder as obs
from .window import SimResult, simulate_window


def loop_stream(order: Sequence[str], iterations: int) -> list[str]:
    """The dynamic instruction stream of ``iterations`` repetitions."""
    return [
        instance_name(node, k) for k in range(iterations) for node in order
    ]


def simulate_loop_order(
    loop: LoopGraph,
    order: Sequence[str],
    iterations: int,
    machine: MachineModel | None = None,
) -> SimResult:
    """Run ``iterations`` repetitions of per-iteration ``order`` through the
    window simulator on the fully unrolled dependence graph."""
    machine = machine or single_unit_machine()
    if sorted(order) != sorted(loop.nodes):
        raise ValueError("order must be a permutation of the loop body")
    with obs.span("sim.loop", iterations=iterations, body=len(loop.nodes)):
        graph = loop.unroll(iterations)
        return simulate_window(
            graph,
            loop_stream(order, iterations),
            machine,
            trace_label=f"loop x{iterations}",
        )


def simulate_loop_trace_orders(
    loop_trace: LoopTrace,
    block_orders: Sequence[Sequence[str]],
    iterations: int,
    machine: MachineModel | None = None,
) -> SimResult:
    """Same for a multi-block loop trace: the stream is the concatenated
    per-block orders, repeated per iteration."""
    machine = machine or single_unit_machine()
    per_iter: list[str] = [n for order in block_orders for n in order]
    if sorted(per_iter) != sorted(loop_trace.program_order()):
        raise ValueError("block orders must cover the trace exactly once")
    with obs.span(
        "sim.loop", iterations=iterations, body=len(per_iter)
    ):
        graph = loop_trace.unrolled_graph(iterations)
        stream = [
            instance_name(node, k) for k in range(iterations) for node in per_iter
        ]
        return simulate_window(
            graph, stream, machine, trace_label=f"loop trace x{iterations}"
        )


def iteration_completions(
    result: SimResult, order: Sequence[str], iterations: int
) -> list[int]:
    """Completion time of each iteration (max completion over its instances)."""
    out = []
    for k in range(iterations):
        out.append(
            max(result.schedule.completion(instance_name(n, k)) for n in order)
        )
    return out


def simulated_initiation_interval(
    loop: LoopGraph,
    order: Sequence[str],
    machine: MachineModel | None = None,
    iterations: int = 12,
) -> int:
    """Asymptotic cycles per iteration under the window model, measured as
    the completion-time difference of the last two simulated iterations
    (steady state is reached within a couple of iterations for bounded
    latencies)."""
    if iterations < 3:
        raise ValueError("need at least 3 iterations to measure steady state")
    sim = simulate_loop_order(loop, order, iterations, machine)
    comps = iteration_completions(sim, order, iterations)
    return comps[-1] - comps[-2]


def periodic_initiation_interval(
    loop: LoopGraph,
    offsets: Mapping[str, int],
    machine: MachineModel | None = None,
) -> int:
    """Smallest initiation interval at which the fixed block schedule
    ``offsets`` (node → start time within the iteration) can repeat:

    - every carried edge (u, v)⟨lat, d⟩ needs
      ``offset(v) + II·d >= offset(u) + exec(u) + lat``;
    - modulo resource feasibility: instances k·II + offset must never
      oversubscribe a functional-unit class.

    Reproduces Figure 3: schedule L4 ST C4 M BT has II = 7; L4 ST M C4 BT
    has II = 6.
    """
    machine = machine or single_unit_machine()
    if sorted(offsets) != sorted(loop.nodes):
        raise ValueError("offsets must cover the loop body exactly")
    lower = 1
    for e in loop.carried_edges():
        gap = offsets[e.src] + loop.exec_time(e.src) + e.latency - offsets[e.dst]
        lower = max(lower, math.ceil(gap / e.distance))
    makespan = max(offsets[n] + loop.exec_time(n) for n in loop.nodes)
    for ii in range(lower, makespan + 1):
        if _modulo_resources_ok(loop, offsets, ii, machine):
            return ii
    return max(lower, makespan)


def _modulo_resources_ok(
    loop: LoopGraph,
    offsets: Mapping[str, int],
    ii: int,
    machine: MachineModel,
) -> bool:
    """Check per-class capacity of the modulo reservation table for ``ii``."""
    usage: dict[str, dict[int, int]] = {}
    for n in loop.nodes:
        cls = loop.fu_class(n)
        pool = ANY if (cls == ANY or machine.is_single_unit) else cls
        table = usage.setdefault(pool, {})
        for step in range(loop.exec_time(n)):
            slot = (offsets[n] + step) % ii
            table[slot] = table.get(slot, 0) + 1
    for pool, table in usage.items():
        cap = (
            machine.total_units
            if pool == ANY
            else len(machine.units_for(pool))
        )
        if any(count > cap for count in table.values()):
            return False
    return True


def in_order_offsets(
    loop: LoopGraph, order: Sequence[str], machine: MachineModel | None = None
) -> dict[str, int]:
    """Start offsets of one iteration executed in ``order`` in isolation
    (intra-iteration dependences only) — the single-iteration schedule whose
    periodic repetition the paper's Figure 3 analyses."""
    machine = machine or single_unit_machine()
    sim = simulate_loop_order(loop, order, 1, machine)
    return {n: sim.start(instance_name(n, 0)) for n in loop.nodes}
