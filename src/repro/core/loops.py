"""Anticipatory instruction scheduling for loops (paper §5).

Two cases:

* **Trace of m > 1 blocks inside a loop** (§5.1): run Algorithm Lookahead on
  the trace, then perform one extra merge in which a *virtual copy* of BB₁
  (the next iteration's instance, order-pinned to BB₁'s already-emitted
  order) is scheduled as the successor of the final suffix, connected through
  the loop-carried dependences.  This lets the tail blocks leave their idle
  slots where the next iteration's head can fill them.  The virtual copy is
  then discarded; only real block orders are emitted.

* **Single-block loops** (§5.2): the overlap is between instances of the
  *same* block.  The loop graph is rewritten into an acyclic graph G′ with a
  dummy node representing a neighbouring iteration's instance of a chosen
  node, G′ is scheduled with the Rank Algorithm + Move_Idle_Slot, and the
  dummy is dropped:

  - §5.2.1 (single source y of G_li, target of all carried edges): dummy
    *sink* z = next iteration's y; zero-latency edges from every node to z;
    each carried edge (x, y)⟨lat, d⟩ becomes (x, z)⟨lat, 0⟩.
  - §5.2.2 (single sink y of G_li, source of all carried edges): dummy
    *source* z = previous iteration's y; zero-latency edges from z to every
    node; each carried edge (y, v)⟨lat, d⟩ becomes (z, v)⟨lat, 0⟩.
  - §5.2.3 (general): try §5.2.1 with every target of a carried edge and
    §5.2.2 with every source of one, and keep the candidate whose schedule
    has the best measured steady-state behaviour (paper: "select the best of
    the candidate schedules").

All three constructions are provably optimal in the Rank-Algorithm regime
(0/1 latencies, unit times, single FU — paper §5, citing [11]) and are used
as heuristics otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.basicblock import LoopTrace
from ..ir.depgraph import DependenceGraph
from ..ir.loopgraph import LoopGraph
from ..machine.model import MachineModel, single_unit_machine
from .idle import delay_idle_slots, makespan_deadlines
from .lookahead import LookaheadResult, algorithm_lookahead
from .merge import merge
from .rank import rank_schedule
from .schedule import Schedule

#: Name of the dummy iteration-boundary node added by the §5.2 transforms.
DUMMY = "__iter__"


def single_source_transform(loop: LoopGraph, source: str) -> DependenceGraph:
    """§5.2.1 rewrite: acyclic G′ with a dummy *sink* standing for the next
    iteration's instance of ``source``.  Carried edges that target ``source``
    are redirected onto the dummy (same latency, distance 0); other carried
    edges are dropped (they constrain later candidates, not this one)."""
    if source not in loop:
        raise KeyError(f"unknown node {source!r}")
    g = loop.loop_independent_subgraph()
    g.add_node(DUMMY, exec_time=loop.exec_time(source), fu_class=loop.fu_class(source))
    for n in loop.nodes:
        g.add_edge(n, DUMMY, 0)
    for e in loop.carried_edges():
        if e.dst == source:
            g.add_edge(e.src, DUMMY, e.latency)
    return g


def single_sink_transform(loop: LoopGraph, sink: str) -> DependenceGraph:
    """§5.2.2 rewrite (the dual): acyclic G′ with a dummy *source* standing
    for the previous iteration's instance of ``sink``.  Carried edges leaving
    ``sink`` are re-rooted at the dummy (same latency, distance 0)."""
    if sink not in loop:
        raise KeyError(f"unknown node {sink!r}")
    gli = loop.loop_independent_subgraph()
    g = DependenceGraph()
    g.add_node(DUMMY, exec_time=loop.exec_time(sink), fu_class=loop.fu_class(sink))
    for n in loop.nodes:
        g.add_node(n, loop.exec_time(n), loop.fu_class(n))
    for u, v, lat in gli.edges():
        g.add_edge(u, v, lat)
    for n in loop.nodes:
        g.add_edge(DUMMY, n, 0)
    for e in loop.carried_edges():
        if e.src == sink:
            g.add_edge(DUMMY, e.dst, e.latency)
    return g


def _schedule_transform(
    transformed: DependenceGraph, machine: MachineModel
) -> list[str]:
    """Rank-schedule G′, delay its idle slots, and return the per-iteration
    instruction order with the dummy removed."""
    sched, _ = rank_schedule(transformed, None, machine)
    assert sched is not None
    sched, _ = delay_idle_slots(sched, makespan_deadlines(sched), machine)
    return [n for n in sched.permutation() if n != DUMMY]


@dataclass
class LoopCandidate:
    """One candidate per-iteration order and how it was obtained."""

    order: list[str]
    kind: str  # "source" (§5.2.1) or "sink" (§5.2.2) or "block" (no carried deps)
    pivot: str | None
    completion: int  # simulated completion of the evaluation horizon
    single_iteration_makespan: int


@dataclass
class LoopScheduleResult:
    """Result of single-block-loop anticipatory scheduling."""

    order: list[str]
    best: LoopCandidate
    candidates: list[LoopCandidate] = field(default_factory=list)


def schedule_single_block_loop(
    loop: LoopGraph,
    machine: MachineModel | None = None,
    horizon: int = 8,
    restrict_candidates: bool = False,
) -> LoopScheduleResult:
    """§5.2.3 general algorithm: enumerate source/sink candidates, schedule
    each transform, and keep the order with the smallest simulated completion
    over ``horizon`` iterations (ties: smaller single-iteration makespan,
    then candidate enumeration order).

    ``restrict_candidates`` applies the paper's 0/1-latency compile-time
    optimization: only G_li-sources are tried as §5.2.1 pivots and only
    G_li-sinks as §5.2.2 pivots.
    """
    from ..sim.loop_runner import simulate_loop_order

    machine = machine or single_unit_machine()
    gli = loop.loop_independent_subgraph()

    def block_makespan(order: list[str]) -> int:
        return simulate_loop_order(loop, order, 1, machine).makespan

    candidates: list[LoopCandidate] = []
    seen_orders: set[tuple[str, ...]] = set()

    def add(order: list[str], kind: str, pivot: str | None) -> None:
        key = tuple(order)
        if key in seen_orders:
            return
        seen_orders.add(key)
        sim = simulate_loop_order(loop, order, horizon, machine)
        candidates.append(
            LoopCandidate(
                order=order,
                kind=kind,
                pivot=pivot,
                completion=sim.makespan,
                single_iteration_makespan=block_makespan(order),
            )
        )

    carried = [e for e in loop.carried_edges()]
    if not carried:
        # No carried dependences: ordinary block scheduling suffices.
        sched, _ = rank_schedule(gli, None, machine)
        assert sched is not None
        sched, _ = delay_idle_slots(sched, makespan_deadlines(sched), machine)
        add(sched.permutation(), "block", None)
    else:
        gli_sources = set(gli.sources())
        gli_sinks = set(gli.sinks())
        targets = sorted({e.dst for e in carried}, key=loop.nodes.index)
        sources = sorted({e.src for e in carried}, key=loop.nodes.index)
        for t in targets:
            if restrict_candidates and t not in gli_sources:
                continue
            add(_schedule_transform(single_source_transform(loop, t), machine), "source", t)
        for s in sources:
            if restrict_candidates and s not in gli_sinks:
                continue
            add(_schedule_transform(single_sink_transform(loop, s), machine), "sink", s)
        if not candidates:  # all pivots filtered out: fall back to block order
            sched, _ = rank_schedule(gli, None, machine)
            assert sched is not None
            add(sched.permutation(), "block", None)

    best = min(
        candidates,
        key=lambda c: (c.completion, c.single_iteration_makespan),
    )
    return LoopScheduleResult(order=best.order, best=best, candidates=candidates)


@dataclass
class LoopTraceResult:
    """Result of §5.1 loop-trace scheduling."""

    block_orders: list[list[str]]
    lookahead: LookaheadResult


def schedule_loop_trace(
    loop_trace: LoopTrace, machine: MachineModel | None = None
) -> LoopTraceResult:
    """§5.1: Algorithm Lookahead plus one extra merge of a virtual
    next-iteration copy of BB₁ after the last block."""
    machine = machine or single_unit_machine()
    result = algorithm_lookahead(loop_trace, machine)
    if loop_trace.num_blocks < 2 or not loop_trace.carried_edges:
        return LoopTraceResult(result.block_orders, result)

    # Build an extended graph: the trace plus a pinned copy of BB1.
    bb1 = loop_trace.blocks[0]
    clone_of = {n: f"{n}'" for n in bb1.node_names}
    extended = loop_trace.graph.copy()
    for n in bb1.node_names:
        extended.add_node(
            clone_of[n], loop_trace.graph.exec_time(n), loop_trace.graph.fu_class(n)
        )
    for u, v, lat in bb1.graph.edges():
        extended.add_edge(clone_of[u], clone_of[v], lat)
    # Pin the clone's internal order to BB1's emitted order (a block must run
    # the same schedule every iteration).
    emitted_bb1 = result.block_orders[0]
    for a, b in zip(emitted_bb1, emitted_bb1[1:]):
        extended.add_edge(clone_of[a], clone_of[b], 0)
    # Distance-1 carried edges into BB1 become real edges into the clone
    # (the source is always the *current* iteration's real instance).
    for e in loop_trace.carried_edges:
        if e.distance == 1 and e.dst in clone_of:
            extended.add_edge(e.src, clone_of[e.dst], e.latency)

    # One extra merge: the final suffix (old) against the clone (new).
    committed: list[str] = []
    for step in result.steps:
        committed.extend(step.committed)
    suffix_order = [n for n in result.schedule_order if n not in set(committed)]
    old_nodes = suffix_order
    # Recover suffix deadlines/makespan by rescheduling the suffix alone.
    sub = extended.subgraph(old_nodes)
    sub_sched, _ = rank_schedule(sub, None, machine)
    assert sub_sched is not None
    old_makespan = sub_sched.makespan
    old_deadlines = {n: old_makespan for n in old_nodes}

    merged = merge(
        extended,
        old_nodes,
        old_deadlines,
        old_makespan,
        list(clone_of.values()),
        machine,
    )
    delayed, _ = delay_idle_slots(merged.schedule, merged.deadlines, machine)

    # Re-derive the real blocks' orders from committed prefix + new suffix.
    clone_set = set(clone_of.values())
    new_order = committed + [n for n in delayed.permutation() if n not in clone_set]
    position = {n: i for i, n in enumerate(new_order)}
    block_orders = [
        sorted(bb.node_names, key=lambda n: position[n]) for bb in loop_trace.blocks
    ]
    return LoopTraceResult(block_orders, result)
