"""Instruction representation for the toy target ISA.

The paper's algorithms only need (a) a unique identity per instruction,
(b) an execution time, (c) a functional-unit class, and (d) enough operand
information to build a dependence graph.  We model instructions after the
RS/6000-like fragment in Figure 3 of the paper: general-purpose registers
``gr*``, condition registers ``cr*``, and memory accesses expressed through
explicit ``loads``/``stores`` operand sets so the dependence builder can add
memory edges conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Functional-unit class names used across the library.  ``ANY`` matches every
#: unit; the others mirror a simple superscalar split.
ANY = "any"
FIXED = "fixed"
FLOAT = "float"
MEMORY = "memory"
BRANCH = "branch"

FU_CLASSES = (ANY, FIXED, FLOAT, MEMORY, BRANCH)


@dataclass(frozen=True)
class Instruction:
    """A single machine instruction.

    Parameters
    ----------
    name:
        Unique identifier within the enclosing program (also used as the
        dependence-graph node id).
    opcode:
        Mnemonic, purely informational to the schedulers.
    reads / writes:
        Register names read / written.  Used by
        :func:`repro.ir.builder.build_dependence_graph` to derive RAW, WAR
        and WAW edges.
    loads / stores:
        Abstract memory location names accessed.  Two accesses to the same
        location (or to the special wildcard ``"*"``) conflict.
    exec_time:
        Number of cycles the instruction occupies its functional unit.
        The paper's core results assume 1 (unit execution time).
    latency:
        Result latency: a dependent instruction can start
        ``exec_time + latency`` cycles after this one starts, i.e. ``latency``
        cycles after it completes.  The paper's core results assume 0/1.
    fu_class:
        Functional-unit class required (:data:`ANY` runs anywhere).
    is_branch:
        Branches terminate basic blocks and receive control-dependence edges
        from every other instruction in the block.
    """

    name: str
    opcode: str = "op"
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    loads: tuple[str, ...] = ()
    stores: tuple[str, ...] = ()
    exec_time: int = 1
    latency: int = 1
    fu_class: str = ANY
    is_branch: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("instruction name must be non-empty")
        if self.exec_time < 1:
            raise ValueError(f"exec_time must be >= 1, got {self.exec_time}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.fu_class not in FU_CLASSES:
            raise ValueError(f"unknown fu_class {self.fu_class!r}")

    # Convenience constructors -------------------------------------------------

    @staticmethod
    def simple(name: str, latency: int = 1) -> "Instruction":
        """Unit-time instruction with the given result latency (paper model)."""
        return Instruction(name=name, latency=latency)

    def with_name(self, name: str) -> "Instruction":
        """Copy of this instruction under a different unique name."""
        return Instruction(
            name=name,
            opcode=self.opcode,
            reads=self.reads,
            writes=self.writes,
            loads=self.loads,
            stores=self.stores,
            exec_time=self.exec_time,
            latency=self.latency,
            fu_class=self.fu_class,
            is_branch=self.is_branch,
        )

    def touches_memory(self) -> bool:
        return bool(self.loads or self.stores)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}:{self.opcode}"


def make_instructions(names: Iterable[str], **kwargs) -> list[Instruction]:
    """Build a list of homogeneous instructions from bare names."""
    return [Instruction(name=n, **kwargs) for n in names]
