"""Unit tests for the brute-force oracle itself (known-by-hand optima)."""

import pytest

from repro.ir import ANY, graph_from_edges
from repro.machine import MachineModel, paper_machine
from repro.schedulers import (
    best_stream_order,
    is_feasible_instance,
    optimal_makespan,
    optimal_schedule,
)


class TestKnownOptima:
    def test_independent_nodes(self):
        g = graph_from_edges([], nodes=["a", "b", "c"])
        assert optimal_makespan(g) == 3

    def test_chain_with_latency(self):
        g = graph_from_edges([("a", "b", 2)])
        assert optimal_makespan(g) == 4

    def test_latency_hidden_by_filler(self):
        g = graph_from_edges([("a", "b", 2)], nodes=["a", "b", "f1", "f2"])
        assert optimal_makespan(g) == 4  # a f1 f2 b

    def test_figure1_is_7(self):
        from repro.workloads import figure1_bb1

        assert optimal_makespan(figure1_bb1()) == 7

    def test_two_units(self):
        g = graph_from_edges([], nodes=["a", "b", "c", "d"])
        m = MachineModel(window_size=1, fu_counts={ANY: 2})
        assert optimal_makespan(g, m) == 2

    def test_typed_units(self):
        g = graph_from_edges(
            [],
            nodes=["m1", "m2", "f1"],
            fu_classes={"m1": "memory", "m2": "memory", "f1": "fixed"},
        )
        m = MachineModel(window_size=1, fu_counts={"memory": 1, "fixed": 1})
        assert optimal_makespan(g, m) == 2

    def test_non_unit_exec(self):
        g = graph_from_edges([("a", "b", 0)], exec_times={"a": 3})
        assert optimal_makespan(g) == 4

    def test_waiting_can_beat_greedy(self):
        """Instance where issuing a ready filler first is optimal but a
        naive wrong greedy could stall; brute force must find 4."""
        g = graph_from_edges(
            [("a", "b", 1), ("b", "c", 0)], nodes=["f", "a", "b", "c"]
        )
        assert optimal_makespan(g) == 4  # a f b c

    def test_empty_graph(self):
        from repro.ir import DependenceGraph

        assert optimal_makespan(DependenceGraph()) == 0

    def test_size_cap(self):
        from repro.workloads import random_dag

        with pytest.raises(ValueError, match="16"):
            optimal_schedule(random_dag(20, seed=0))


class TestDeadlineOracle:
    def test_feasible(self):
        g = graph_from_edges([("a", "b", 1)])
        assert is_feasible_instance(g, {"a": 1, "b": 3})

    def test_infeasible(self):
        g = graph_from_edges([("a", "b", 1)])
        assert not is_feasible_instance(g, {"b": 2})

    def test_deadline_forces_different_order(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = optimal_schedule(g, deadlines={"b": 1})
        assert s is not None and s.start("b") == 0


class TestBestStreamOrder:
    def test_exhaustive_on_figure2(self):
        from repro.machine import paper_machine
        from repro.workloads import figure2_trace

        t = figure2_trace(with_cross_edge=True)
        order, span = best_stream_order(
            t.graph, [t.block_nodes(0), t.block_nodes(1)], paper_machine(2)
        )
        assert span == 11  # the paper's (and our algorithm's) completion
        assert len(order) == 11
