"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures (E1-E4) or one table
of the prospective study the paper proposed in §7 (E5-E11; see DESIGN.md).
Tables are printed and also written to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

from repro.analysis import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(
    name: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str,
) -> str:
    """Format, print and persist an experiment table."""
    text = format_table(headers, rows, title=title)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
