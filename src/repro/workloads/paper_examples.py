"""The exact dependence graphs of the paper's worked examples.

Figure 1 and Figure 2 are reconstructed from the rank values printed in §2
(the reconstruction reproduces *every* rank the paper lists — see
``tests/workloads/test_paper_examples.py``); Figure 3 is transcribed from the
printed RS/6000 instruction sequence and its dependence graph; Figure 8 from
the counter-example discussion in §5.2.2.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock, Trace, block_from_graph
from ..ir.depgraph import DependenceGraph, graph_from_edges
from ..ir.instruction import Instruction
from ..ir.loopgraph import LoopGraph, loop_from_edges

#: Program order chosen for BB1 so that rank ties resolve to the ordering the
#: paper picks ("Suppose the ordering we choose is: e, x, b, w, a, r").
FIG1_NODES = ("e", "x", "b", "w", "a", "r")

#: Latency-1 edges of Figure 1's basic block BB1.  With deadline 100 these
#: give exactly the paper's ranks: rank(a)=rank(r)=100, rank(w)=rank(b)=98,
#: rank(x)=rank(e)=95.
FIG1_EDGES = (
    ("e", "b", 1),
    ("e", "w", 1),
    ("x", "b", 1),
    ("x", "w", 1),
    ("x", "r", 1),
    ("b", "a", 1),
    ("w", "a", 1),
)


def figure1_bb1() -> DependenceGraph:
    """Basic block BB1 of Figure 1 (six unit-time instructions)."""
    return graph_from_edges(FIG1_EDGES, nodes=FIG1_NODES)


FIG2_NODES = ("z", "q", "p", "v", "g")

#: Edges of Figure 2's BB2.  With the cross edge w→z (latency 1) and deadline
#: 100 on BB1 ∪ BB2 these reproduce the paper's merged ranks:
#: g=v=a=r=100, p=b=98, q=97, z=95, w=93, e=91, x=90.
FIG2_EDGES = (
    ("z", "q", 1),
    ("z", "v", 1),
    ("q", "p", 0),
    ("p", "g", 1),
)

#: The inter-block dependence added in the second half of §2.3.
FIG2_CROSS_EDGE = ("w", "z", 1)


def figure2_bb2() -> DependenceGraph:
    """Basic block BB2 of Figure 2 (five unit-time instructions)."""
    return graph_from_edges(FIG2_EDGES, nodes=FIG2_NODES)


def figure2_trace(with_cross_edge: bool = True) -> Trace:
    """The two-block trace BB1, BB2 of §2.3, optionally with the latency-1
    edge from instruction w (BB1) to instruction z (BB2)."""
    blocks = [
        block_from_graph("BB1", figure1_bb1()),
        block_from_graph("BB2", figure2_bb2()),
    ]
    cross = [FIG2_CROSS_EDGE] if with_cross_edge else []
    return Trace(blocks, cross_edges=cross)


#: Figure 3 loop-body instruction sequence (IBM RS/6000 flavour).  LOAD and
#: COMPARE have latency 1, MULTIPLY latency 4 (paper's stated latencies); the
#: STORE belongs to the *previous* software-pipelined iteration.
FIG3_TEXT = """
block CL.18
  L4 op=load  defs=gr6,gr7 uses=gr7     loads=x  lat=1
  ST op=store defs=gr5     uses=gr5,gr0 stores=y lat=1
  C4 op=cmp   defs=cr1     uses=gr6              lat=1
  M  op=mul   defs=gr0     uses=gr6,gr0          lat=4
  BT op=bt                 uses=cr1              lat=1 branch
"""

FIG3_NODES = ("L4", "ST", "C4", "M", "BT")

#: ⟨latency, distance⟩ dependence edges of Figure 3's loop body.
#: distance 0 = loop-independent, distance 1 = loop-carried.
FIG3_EDGES = (
    # loop-independent data dependences
    ("L4", "C4", 1, 0),   # gr6 RAW, load latency 1
    ("L4", "M", 1, 0),    # gr6 RAW
    ("ST", "M", 0, 0),    # gr0 WAR: store reads y[i-1]'s value before M overwrites
    # control dependences: everything precedes the branch
    ("L4", "BT", 0, 0),
    ("ST", "BT", 0, 0),
    ("M", "BT", 0, 0),
    ("C4", "BT", 1, 0),   # cr1 RAW, compare latency 1
    # loop-carried dependences
    ("M", "ST", 4, 1),    # gr0 RAW across iterations (the software pipeline)
    ("M", "M", 4, 1),     # gr0 RAW self-dependence
    ("L4", "L4", 1, 1),   # gr7 index update
    ("ST", "ST", 1, 1),   # gr5 index update
    ("C4", "L4", 0, 1),   # gr6 WAR into the next iteration's load
    ("M", "L4", 0, 1),    # gr6 WAR
)


def figure3_loop() -> LoopGraph:
    """Loop dependence graph of Figure 3 (partial-products kernel)."""
    return loop_from_edges(FIG3_EDGES, nodes=FIG3_NODES)


#: The paper's two candidate schedules for the Figure 3 loop body.
FIG3_SCHEDULE1 = ("L4", "ST", "C4", "M", "BT")  # block-optimal, 5 cycles; II=7
FIG3_SCHEDULE2 = ("L4", "ST", "M", "C4", "BT")  # 6 cycles standalone; II=6


def figure3_instructions() -> list[Instruction]:
    """The Figure 3 loop body as parsed instructions (for the examples)."""
    from ..ir.parser import parse_program

    return parse_program(FIG3_TEXT)[0][1]


FIG8_NODES = ("1", "2", "3")

#: Figure 8 counter-example: G_li has sources 1 and 2 feeding sink 3 with
#: latency-1 edges; the carried edge 3→1 ⟨1,1⟩ makes node 1 wait on the
#: previous iteration, so node 2 should be scheduled first.
FIG8_EDGES = (
    ("1", "3", 1, 0),
    ("2", "3", 1, 0),
    ("3", "1", 1, 1),
)


def figure8_loop() -> LoopGraph:
    return loop_from_edges(FIG8_EDGES, nodes=FIG8_NODES)


FIG8_SCHEDULE_S1 = ("1", "2", "3")  # completion 5n - 1 under in-order issue
FIG8_SCHEDULE_S2 = ("2", "1", "3")  # completion 4n under in-order issue
