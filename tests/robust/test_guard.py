"""Tests for the guarded scheduling pipeline: every degradation path must
come back as a verified per-block fallback with a counted reason."""

import time

import pytest

from repro import parse_trace
from repro.analysis.verify import verify_scheduler_output
from repro.core import local_block_orders
from repro.machine import paper_machine
from repro.obs import TraceRecorder, recording
from repro.robust.faults import FaultPlan, injection
from repro.robust.guard import (
    FALLBACK_REASONS,
    DegradedResult,
    GuardedScheduler,
    GuardError,
)

TWO_BLOCK = """
block top
  a op=li  defs=r1 lat=1
  b op=li  defs=r2 lat=1
  c op=mul defs=r3 uses=r1,r2 lat=4
block bottom
  d op=add defs=r4 uses=r3 lat=1
"""


@pytest.fixture
def trace():
    return parse_trace(TWO_BLOCK)


@pytest.fixture
def machine():
    return paper_machine(2)


def _slow_primary(trace, machine):
    time.sleep(5.0)
    return local_block_orders(trace, machine)


def _broken_primary(trace, machine):
    raise RuntimeError("scheduler exploded")


def _illegal_primary(trace, machine):
    # Drops a block entirely: fails verification with an OutputError.
    return local_block_orders(trace, machine)[:-1]


class TestPrimaryPath:
    def test_success_returns_lookahead(self, trace, machine):
        result = GuardedScheduler(machine=machine).schedule(trace)
        assert result.ok
        assert result.source == "lookahead"
        assert result.degraded is None
        assert result.predicted_makespan is not None
        verify_scheduler_output(trace, result.block_orders, machine)

    def test_success_counts_primary_ok(self, trace, machine):
        with recording(TraceRecorder(sim_events=False)) as rec:
            GuardedScheduler(machine=machine).schedule(trace)
        assert rec.counters.get("guard.primary_ok") == 1
        assert rec.counters.get("guard.schedule") == 1
        assert "guard.fallback" not in rec.counters


class TestDegradedPaths:
    def _assert_fallback(self, result, trace, machine, reason):
        assert not result.ok
        assert result.source == "fallback"
        assert result.degraded.reason == reason
        assert result.block_orders == local_block_orders(trace, machine)
        verify_scheduler_output(trace, result.block_orders, machine)

    def test_node_budget(self, trace, machine):
        guard = GuardedScheduler(machine=machine, node_budget=2)
        result = guard.schedule(trace)
        self._assert_fallback(result, trace, machine, "node_budget")
        assert "node budget" in result.degraded.detail

    def test_exception(self, trace, machine):
        guard = GuardedScheduler(machine=machine, primary=_broken_primary)
        result = guard.schedule(trace)
        self._assert_fallback(result, trace, machine, "exception")
        assert "scheduler exploded" in result.degraded.detail

    def test_output_error(self, trace, machine):
        guard = GuardedScheduler(machine=machine, primary=_illegal_primary)
        result = guard.schedule(trace)
        self._assert_fallback(result, trace, machine, "output_error")

    def test_timeout(self, trace, machine):
        guard = GuardedScheduler(
            machine=machine, time_budget_s=0.1, primary=_slow_primary
        )
        started = time.perf_counter()
        result = guard.schedule(trace)
        elapsed = time.perf_counter() - started
        self._assert_fallback(result, trace, machine, "timeout")
        assert elapsed < 4.0  # the SIGALRM limit preempted the sleep

    def test_injected_deadlock(self, trace, machine):
        guard = GuardedScheduler(machine=machine)
        with injection(FaultPlan(name="dl", deadlock_after=0)):
            result = guard.schedule(trace)
        self._assert_fallback(result, trace, machine, "deadlock")

    def test_corrupt_stream_fault_degrades(self, trace, machine):
        # Verification simulates under the active plan; the corrupted
        # stream is rejected, and the fallback is verified with injection
        # suspended — so the returned order is still legal.
        guard = GuardedScheduler(machine=machine)
        with injection(FaultPlan(name="tr", truncate_stream=True)):
            result = guard.schedule(trace)
        assert result.source == "fallback"
        verify_scheduler_output(trace, result.block_orders, machine)

    def test_fallback_reason_counted(self, trace, machine):
        guard = GuardedScheduler(machine=machine, primary=_broken_primary)
        with recording(TraceRecorder(sim_events=False)) as rec:
            guard.schedule(trace)
        assert rec.counters.get("guard.fallback") == 1
        assert rec.counters.get("guard.fallback.exception") == 1


class TestGuardHardFailure:
    def test_broken_fallback_raises_guard_error(
        self, trace, machine, monkeypatch
    ):
        import repro.robust.guard as guard_mod

        monkeypatch.setattr(
            guard_mod, "local_block_orders", lambda t, m: _illegal_primary(t, m)
        )
        guard = GuardedScheduler(machine=machine, primary=_broken_primary)
        with pytest.raises(GuardError, match="fallback failed verification"):
            guard.schedule(trace)


class TestDegradedResult:
    def test_reason_validated(self):
        with pytest.raises(ValueError, match="unknown degradation reason"):
            DegradedResult(reason="cosmic_rays", detail="")

    def test_to_dict_round_trip(self):
        d = DegradedResult(
            reason=FALLBACK_REASONS[0], detail="x", elapsed_s=0.5
        ).to_dict()
        assert d["reason"] == FALLBACK_REASONS[0]
        assert d["elapsed_s"] == 0.5


class TestGuardConfig:
    def test_negative_node_budget_rejected(self):
        with pytest.raises(ValueError):
            GuardedScheduler(node_budget=-1)


class TestPerCallBudget:
    def test_call_budget_overrides_instance_budget(self, trace, machine):
        # Instance has no budget; the call's tight one degrades the slow
        # primary — the serving worker's deadline-tightening path.
        guard = GuardedScheduler(machine=machine, primary=_quick_sleeper)
        result = guard.schedule(trace, time_budget_s=0.05)
        assert not result.ok and result.degraded.reason == "timeout"

    def test_explicit_none_disables_instance_budget(self, trace, machine):
        guard = GuardedScheduler(
            machine=machine, time_budget_s=0.05, primary=_quick_sleeper
        )
        result = guard.schedule(trace, time_budget_s=None)
        assert result.ok

    def test_unset_keeps_instance_budget(self, trace, machine):
        guard = GuardedScheduler(
            machine=machine, time_budget_s=0.05, primary=_quick_sleeper
        )
        result = guard.schedule(trace)
        assert not result.ok and result.degraded.reason == "timeout"


def _quick_sleeper(trace, machine):
    time.sleep(0.15)
    return local_block_orders(trace, machine)
