"""Legal-schedule checking (paper Definitions 2.1–2.3).

A runtime schedule S (with issue permutation P) for a trace is *legal* iff

- it satisfies all dependences,
- **Window Constraint**: for every inversion (i, j) in P — the i-th issued
  instruction belongs to a later basic block than the j-th with i < j —
  ``j − i + 1 <= W``;
- **Ordering Constraint**: S is obtainable as a greedy schedule from the
  priority list L = P₁∘P₂∘…∘Pₘ of its per-block sub-permutations (the
  hardware never issues a later ready window instruction over an earlier
  ready one).

Reproduction note — the span-based Window Constraint is *conservative*.
The operational hardware model of §2.3 (a window of W contiguous *stream*
instructions that slides when its head issues) can produce issue
permutations whose inversion spans exceed W: when two or more later-block
instructions overtake a stalled run of earlier-block instructions, other
early issues pad the permutation between an inversion pair even though, at
the moment each overtaking instruction issued, it was within W stream
positions of every instruction it passed.  Definition 2.2 measures the span
in the *issue permutation*, which over-counts those pad instructions.  This
library therefore distinguishes:

- :func:`satisfies_window_constraint` — the paper's Definition 2.2 check,
  exactly as printed (useful for the theory, conservative in practice);
- :func:`is_legal_schedule` — the operational check: the schedule must be
  dependence-valid and *reproducible* as the windowed greedy execution of
  its own priority list (the simulator is the machine model, so this is the
  physically meaningful notion; it subsumes both of the paper's constraints
  in their operational form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ir.basicblock import Trace
from ..machine.model import MachineModel, single_unit_machine
from .schedule import Schedule


@dataclass(frozen=True)
class Inversion:
    """Positions (i, j) in the issue permutation with i < j where position i
    holds an instruction of a *later* block than position j."""

    i: int
    j: int
    earlier_node: str
    later_node: str

    @property
    def span(self) -> int:
        return self.j - self.i + 1


def inversions(trace: Trace, permutation: Sequence[str]) -> list[Inversion]:
    """All block-order inversions of ``permutation`` (Definition 2.2)."""
    blocks = [trace.block_index(n) for n in permutation]
    out: list[Inversion] = []
    for i in range(len(permutation)):
        for j in range(i + 1, len(permutation)):
            if blocks[i] > blocks[j]:
                out.append(Inversion(i, j, permutation[i], permutation[j]))
    return out


def satisfies_window_constraint(
    trace: Trace, permutation: Sequence[str], window_size: int
) -> bool:
    """Every inversion must fit in the lookahead window: span <= W."""
    return all(inv.span <= window_size for inv in inversions(trace, permutation))


def block_orders_of(trace: Trace, permutation: Sequence[str]) -> list[list[str]]:
    """Sub-permutations P₁,…,Pₘ of ``permutation`` (Definition 2.1)."""
    out: list[list[str]] = [[] for _ in range(trace.num_blocks)]
    for n in permutation:
        out[trace.block_index(n)].append(n)
    return out


def satisfies_ordering_constraint(
    trace: Trace,
    schedule: Schedule,
    machine: MachineModel | None = None,
    priority: Sequence[str] | None = None,
) -> bool:
    """S must be reproducible as the greedy window execution of a priority
    list L = P₁∘…∘Pₘ — same start times for every instruction.

    Definition 2.3 is existential ("obtainable as a greedy schedule from
    *a* priority list"); when the caller knows the list that produced S it
    passes it as ``priority`` and the check is exact.  Without a witness
    the canonical candidate — the sub-permutations of S's own issue order —
    is tried instead.  That candidate is *incomplete*: a windowed execution
    may overtake a stalled instruction within its own block, so the issue
    order's per-block sub-permutation can differ from the list that
    produced it, and ties under multi-unit issue make the permutation
    itself ambiguous.  A ``False`` without a witness therefore means "the
    canonical witness fails", not "no witness exists".
    """
    from ..sim.window import simulate_window

    machine = machine or single_unit_machine()
    if priority is None:
        perm = schedule.permutation()
        priority = [n for order in block_orders_of(trace, perm) for n in order]
    sim = simulate_window(trace.graph, priority, machine)
    return all(sim.start(n) == schedule.start(n) for n in trace.graph.nodes)


def is_legal_schedule(
    trace: Trace,
    schedule: Schedule,
    machine: MachineModel | None = None,
    strict: bool = False,
    witness_orders: Sequence[Sequence[str]] | None = None,
) -> bool:
    """Operational legality: dependences + reproducibility as the windowed
    greedy execution of a priority list.

    ``witness_orders`` — per-block orders whose concatenation is the
    priority list claimed to produce the schedule (e.g. the orders a
    scheduler actually emitted).  With a witness the reproducibility check
    is exact; without one the schedule's own derived sub-permutations are
    tried, which is conservative (see
    :func:`satisfies_ordering_constraint`).

    With ``strict=True`` the paper's literal span-based Window Constraint
    (Definition 2.2) is additionally required — see the module docstring for
    why the operational hardware can legitimately violate it.
    """
    machine = machine or single_unit_machine()
    if not schedule.is_valid():
        return False
    if strict:
        perm = schedule.permutation()
        if not satisfies_window_constraint(trace, perm, machine.window_size):
            return False
    priority = (
        None
        if witness_orders is None
        else [n for order in witness_orders for n in order]
    )
    return satisfies_ordering_constraint(
        trace, schedule, machine, priority=priority
    )
