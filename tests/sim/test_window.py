"""Unit tests for the lookahead-window simulator (paper §2.3 machine model)."""

import pytest

from repro.core import list_schedule
from repro.ir import ANY, Trace, block_from_graph, graph_from_edges
from repro.machine import MachineModel, paper_machine
from repro.sim import SimulationDeadlock, simulate_trace, simulate_window
from repro.workloads import random_dag


class TestBasicSemantics:
    def test_in_order_when_window_is_1(self):
        """W=1: strictly in-order issue — each instruction waits for its turn
        AND its operands."""
        g = graph_from_edges([("a", "c", 2)], nodes=["a", "b", "c"])
        sim = simulate_window(g, ["a", "b", "c"], paper_machine(1))
        assert sim.start("a") == 0
        assert sim.start("b") == 1
        assert sim.start("c") == 3  # completion(a)=1 + latency 2

    def test_window_lets_later_instruction_pass(self):
        """W=2: b (ready) may issue while head a is stalled? No — the head
        is never stalled at t=0; but a stalled *second* instruction can be
        passed by the third within the window."""
        g = graph_from_edges([("a", "b", 2)], nodes=["a", "b", "c"])
        sim = simulate_window(g, ["a", "b", "c"], paper_machine(2))
        # Window [a,b]: a@0. Window [b,c]: b not ready until 3, c ready: c@1.
        assert sim.start("c") == 1
        assert sim.start("b") == 3

    def test_window_boundary_blocks_lookahead(self):
        """The same stream with W=1 cannot overtake."""
        g = graph_from_edges([("a", "b", 2)], nodes=["a", "b", "c"])
        sim = simulate_window(g, ["a", "b", "c"], paper_machine(1))
        assert sim.start("b") == 3
        assert sim.start("c") == 4

    def test_window_moves_only_when_head_issues(self):
        """Head stalls pin the window: with W=2 and stream [b?, c, d] where
        b stalls long, d (outside the window) cannot issue even when ready."""
        g = graph_from_edges([("a", "b", 5)], nodes=["a", "b", "c", "d"])
        sim = simulate_window(g, ["a", "b", "c", "d"], paper_machine(2))
        assert sim.start("a") == 0
        # After a issues, window = [b, c]: c@1. Then window stuck at [b, d]
        # until b issues at 6; d must wait for the window even though ready.
        assert sim.start("c") == 1
        assert sim.start("b") == 6
        assert sim.start("d") == 7

    def test_ordering_constraint_earlier_ready_first(self):
        """Two ready instructions in the window: the earlier one issues."""
        g = graph_from_edges([], nodes=["a", "b"])
        sim = simulate_window(g, ["a", "b"], paper_machine(2))
        assert sim.start("a") == 0
        assert sim.start("b") == 1
        assert sim.issue_order == ["a", "b"]

    def test_stall_cycles_counted(self):
        g = graph_from_edges([("a", "b", 3)])
        sim = simulate_window(g, ["a", "b"], paper_machine(2))
        assert sim.stall_cycles == 3
        assert sim.makespan == 5

    def test_schedule_is_valid(self):
        g = random_dag(20, edge_probability=0.2, latencies=(0, 1, 2), seed=3)
        sim = simulate_window(g, g.nodes, paper_machine(4))
        sim.schedule.validate()


class TestErrors:
    def test_stream_must_be_permutation(self):
        g = graph_from_edges([], nodes=["a", "b"])
        with pytest.raises(ValueError, match="permutation"):
            simulate_window(g, ["a"], paper_machine(2))

    def test_deadlock_detection(self):
        """A dependence pointing W or more positions forward deadlocks."""
        g = graph_from_edges([("b", "a", 0)], nodes=["a", "b"])
        with pytest.raises(SimulationDeadlock):
            simulate_window(g, ["a", "b"], paper_machine(1))
        # W=2 resolves it: b can issue from the window before a.
        sim = simulate_window(g, ["a", "b"], paper_machine(2))
        assert sim.start("b") == 0

    def test_machine_compatibility_checked(self):
        g = graph_from_edges([], nodes=["f"], fu_classes={"f": "float"})
        m = MachineModel(window_size=2, fu_counts={"fixed": 1})
        with pytest.raises(ValueError, match="lacks"):
            simulate_window(g, ["f"], m)


class TestEquivalences:
    @pytest.mark.parametrize("seed", range(6))
    def test_full_window_equals_list_schedule(self, seed):
        """With W >= n the window never constrains anything, so the greedy
        windowed execution of a priority list equals greedy list scheduling
        from the same list."""
        g = random_dag(12, edge_probability=0.3, latencies=(0, 1), seed=seed)
        m = paper_machine(len(g))
        ls = list_schedule(g, g.nodes, m)
        sim = simulate_window(g, g.nodes, m)
        assert sim.schedule.starts == ls.starts

    def test_makespan_monotone_in_window(self):
        g = random_dag(15, edge_probability=0.25, latencies=(0, 1, 2), seed=6)
        spans = [
            simulate_window(g, g.nodes, paper_machine(w)).makespan
            for w in (1, 2, 4, 8, 16)
        ]
        assert all(a >= b for a, b in zip(spans, spans[1:]))


class TestMultiUnit:
    def test_parallel_issue(self):
        g = graph_from_edges([], nodes=["a", "b", "c", "d"])
        m = MachineModel(window_size=4, fu_counts={ANY: 2})
        sim = simulate_window(g, g.nodes, m)
        assert sim.makespan == 2

    def test_issue_width(self):
        g = graph_from_edges([], nodes=["a", "b", "c", "d"])
        m = MachineModel(window_size=4, fu_counts={ANY: 4}, issue_width=2)
        sim = simulate_window(g, g.nodes, m)
        assert sim.makespan == 2

    def test_typed_units(self):
        g = graph_from_edges(
            [],
            nodes=["m1", "f1", "m2"],
            fu_classes={"m1": "memory", "f1": "fixed", "m2": "memory"},
        )
        m = MachineModel(window_size=4, fu_counts={"memory": 1, "fixed": 1})
        sim = simulate_window(g, g.nodes, m)
        assert sim.makespan == 2
        sim.schedule.validate()


class TestTraceSimulation:
    def make_trace(self):
        g1 = graph_from_edges([("a", "b", 1)])
        g2 = graph_from_edges([("c", "d", 0)])
        return Trace(
            [block_from_graph("B1", g1), block_from_graph("B2", g2)],
            cross_edges=[("a", "c", 1)],
        )

    def test_basic(self):
        t = self.make_trace()
        sim = simulate_trace(t, [["a", "b"], ["c", "d"]], paper_machine(2))
        sim.schedule.validate()
        assert sim.makespan >= 4

    def test_order_validation(self):
        t = self.make_trace()
        with pytest.raises(ValueError, match="permutation"):
            simulate_trace(t, [["a"], ["c", "d"]], paper_machine(2))
        with pytest.raises(ValueError, match="one order per"):
            simulate_trace(t, [["a", "b"]], paper_machine(2))

    def test_misprediction_serializes_boundary(self):
        t = self.make_trace()
        m = paper_machine(4)
        good = simulate_trace(t, [["a", "b"], ["c", "d"]], m)
        bad = simulate_trace(
            t,
            [["a", "b"], ["c", "d"]],
            m,
            mispredicted_blocks=[1],
            misprediction_penalty=3,
        )
        assert bad.makespan >= good.makespan
        # No block-2 instruction may start before every block-1 instruction
        # completed plus the penalty.
        b1_done = max(good.schedule.completion(n) for n in ["a", "b"])
        assert bad.start("c") >= b1_done + 3
        assert bad.start("d") >= b1_done + 3

    def test_zero_penalty_still_barriers(self):
        t = self.make_trace()
        m = paper_machine(4)
        bad = simulate_trace(
            t,
            [["a", "b"], ["c", "d"]],
            m,
            mispredicted_blocks=[1],
            misprediction_penalty=0,
        )
        done = max(bad.schedule.completion(n) for n in ["a", "b"])
        assert bad.start("c") >= done
