"""Low-overhead sampling profiler with collapsed-stack and flamegraph output.

:class:`SamplingProfiler` samples the Python call stack at a fixed interval
and aggregates the samples into collapsed stacks (the Brendan Gregg
``root;child;leaf count`` format) from which a self-contained flamegraph
HTML file can be rendered (:func:`flamegraph_html`) — no external tooling
or JavaScript dependencies.

Two sampling engines, selected by ``mode``:

``itimer`` (the default where available)
    ``signal.setitimer(ITIMER_PROF)`` + a ``SIGPROF`` handler.  The timer
    counts *CPU* time, so a sleeping process takes no samples at all, and
    the handler receives the interrupted frame directly — overhead is a few
    microseconds per sample (<1% at the default 5 ms interval, comfortably
    under the 5% budget the telemetry pipeline gates on).  Only usable on
    the main thread of the main interpreter (the only place CPython
    delivers signals).

``thread``
    A daemon thread that wakes every ``interval_s`` of wall-clock time and
    walks ``sys._current_frames()`` for the target thread.  Works anywhere
    (worker threads, signal-hostile embeddings) at slightly higher overhead
    and wall-clock (not CPU) weighting.

``auto`` picks ``itimer`` when running on the main thread and the platform
has ``setitimer``, else ``thread``.

The profiler is re-entrant-safe but not concurrent: one active instance per
process at a time (a second ``start()`` while another instance is sampling
raises).
"""

from __future__ import annotations

import html
import signal
import sys
import threading
import time
from pathlib import Path
from types import FrameType

#: Default sampling interval: 5 ms (200 Hz).
DEFAULT_INTERVAL_S = 0.005

_active_profiler: "SamplingProfiler | None" = None


def _frame_label(frame: FrameType) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{code.co_name}"


def _walk_stack(frame: FrameType | None, limit: int) -> tuple[str, ...]:
    """The stack rooted-first (outermost caller first, leaf last)."""
    labels: list[str] = []
    while frame is not None and len(labels) < limit:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Sample the call stack every ``interval_s``; aggregate by stack.

    Use as a context manager::

        with SamplingProfiler(interval_s=0.005) as prof:
            expensive_pipeline()
        Path("flame.html").write_text(flamegraph_html(prof.samples))

    ``samples`` maps root-first stack tuples to sample counts.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        mode: str = "auto",
        max_depth: int = 128,
        target_thread_id: int | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if mode not in ("auto", "itimer", "thread"):
            raise ValueError(f"unknown profiler mode {mode!r}")
        if target_thread_id is not None and mode == "itimer":
            raise ValueError(
                "target_thread_id requires thread mode (itimer only "
                "samples the main thread)"
            )
        self.interval_s = interval_s
        self.max_depth = max_depth
        #: Sample this thread instead of the one calling ``start()`` —
        #: forces thread mode.  Lets a daemon profile e.g. its batch
        #: executor thread from the asyncio thread.
        self.target_thread_id = target_thread_id
        self.requested_mode = mode
        #: The engine actually used ("itimer" or "thread"); set by start().
        self.mode: str | None = None
        self.samples: dict[tuple[str, ...], int] = {}
        self.sample_count = 0
        self._running = False
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._previous_handler = None

    # -- engine selection ----------------------------------------------------

    def _resolve_mode(self) -> str:
        if self.target_thread_id is not None:
            return "thread"
        if self.requested_mode != "auto":
            return self.requested_mode
        can_itimer = (
            hasattr(signal, "setitimer")
            and hasattr(signal, "SIGPROF")
            and threading.current_thread() is threading.main_thread()
        )
        return "itimer" if can_itimer else "thread"

    # -- sampling ------------------------------------------------------------

    def _record(self, frame: FrameType | None) -> None:
        stack = _walk_stack(frame, self.max_depth)
        if not stack:
            return
        self.samples[stack] = self.samples.get(stack, 0) + 1
        self.sample_count += 1

    def _on_sigprof(self, signum, frame) -> None:
        self._record(frame)

    def _thread_loop(self, target_thread_id: int) -> None:
        while not self._stop_event.wait(self.interval_s):
            frame = sys._current_frames().get(target_thread_id)
            # Skip the profiler's own frames when the target is idle in us.
            self._record(frame)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        global _active_profiler
        if self._running:
            raise RuntimeError("profiler already running")
        if _active_profiler is not None:
            raise RuntimeError("another SamplingProfiler is already active")
        self.mode = self._resolve_mode()
        if self.mode == "itimer":
            self._previous_handler = signal.signal(
                signal.SIGPROF, self._on_sigprof
            )
            signal.setitimer(
                signal.ITIMER_PROF, self.interval_s, self.interval_s
            )
        else:
            self._stop_event.clear()
            target = (
                self.target_thread_id
                if self.target_thread_id is not None
                else threading.get_ident()
            )
            self._thread = threading.Thread(
                target=self._thread_loop,
                args=(target,),
                name="repro-profiler",
                daemon=True,
            )
            self._thread.start()
        self._running = True
        _active_profiler = self
        return self

    def stop(self) -> "SamplingProfiler":
        global _active_profiler
        if not self._running:
            return self
        if self.mode == "itimer":
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            if self._previous_handler is not None:
                signal.signal(signal.SIGPROF, self._previous_handler)
            self._previous_handler = None
        else:
            self._stop_event.set()
            if self._thread is not None:
                self._thread.join(timeout=2.0)
            self._thread = None
        self._running = False
        if _active_profiler is self:
            _active_profiler = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def profile(fn, *args, interval_s: float = DEFAULT_INTERVAL_S, mode: str = "auto"):
    """Run ``fn(*args)`` under a profiler; returns ``(result, profiler)``."""
    prof = SamplingProfiler(interval_s=interval_s, mode=mode)
    with prof:
        result = fn(*args)
    return result, prof


def profile_overhead(
    fn, repeat: int = 3, interval_s: float = DEFAULT_INTERVAL_S, mode: str = "auto"
) -> tuple[float, "SamplingProfiler"]:
    """Measure the profiler's relative overhead on ``fn``.

    Runs ``fn`` ``repeat`` times bare and ``repeat`` times under a profiler
    (interleaving is not attempted; callers pick a deterministic CPU-bound
    ``fn``).  Returns ``(overhead_fraction, profiler)`` where 0.05 == 5%.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    fn()  # warm-up: imports, caches
    bare = time.perf_counter()
    for _ in range(repeat):
        fn()
    bare = time.perf_counter() - bare
    prof = SamplingProfiler(interval_s=interval_s, mode=mode)
    profiled = time.perf_counter()
    with prof:
        for _ in range(repeat):
            fn()
    profiled = time.perf_counter() - profiled
    overhead = (profiled - bare) / bare if bare > 0 else 0.0
    return overhead, prof


# -- collapsed stacks --------------------------------------------------------


def collapsed_stacks(samples: dict[tuple[str, ...], int]) -> str:
    """The samples in collapsed-stack format: ``root;child;leaf count`` per
    line, sorted for deterministic output.  Feedable to any flamegraph
    tooling (e.g. speedscope or flamegraph.pl)."""
    lines = [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(samples.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> dict[tuple[str, ...], int]:
    """Inverse of :func:`collapsed_stacks` (blank lines skipped)."""
    samples: dict[tuple[str, ...], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_part, _, count_part = line.rpartition(" ")
        if not stack_part:
            continue
        try:
            count = int(count_part)
        except ValueError:
            continue
        stack = tuple(stack_part.split(";"))
        samples[stack] = samples.get(stack, 0) + count
    return samples


# -- flamegraph rendering ----------------------------------------------------


class _Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.children: dict[str, _Node] = {}


def _build_trie(samples: dict[tuple[str, ...], int]) -> _Node:
    root = _Node("all")
    for stack, count in samples.items():
        root.value += count
        node = root
        for label in stack:
            child = node.children.get(label)
            if child is None:
                child = node.children[label] = _Node(label)
            node = child
            node.value += count
    return root


def _frame_color(name: str) -> str:
    """Deterministic warm color per frame name (classic flamegraph look)."""
    h = 0
    for ch in name:
        h = (h * 31 + ord(ch)) & 0xFFFFFF
    r = 205 + (h & 0x1F)          # 205-236
    g = 80 + ((h >> 5) & 0x7F)    # 80-207
    b = (h >> 12) & 0x3F          # 0-63
    return f"rgb({r},{g},{b})"


def flamegraph_html(
    samples: dict[tuple[str, ...], int],
    title: str = "repro flamegraph",
    width: int = 1200,
    row_height: int = 18,
) -> str:
    """A self-contained flamegraph as an HTML document (inline SVG).

    Frame widths are proportional to inclusive sample counts; hovering a
    frame shows its full name, sample count and percentage via a ``<title>``
    tooltip.  Deterministic for a given sample set.
    """
    root = _build_trie(samples)
    total = root.value
    rects: list[str] = []
    max_depth = 0

    def emit(node: _Node, x: float, depth: int) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        w = node.value / total * width if total else 0.0
        if w >= 0.5:  # skip sub-half-pixel frames
            pct = node.value / total * 100 if total else 0.0
            label = html.escape(node.name, quote=True)
            tip = html.escape(
                f"{node.name} — {node.value} samples ({pct:.1f}%)", quote=True
            )
            y = depth * row_height
            text = ""
            if w > 40:
                shown = node.name.rsplit(".", 1)[-1]
                max_chars = max(1, int(w / 7))
                if len(shown) > max_chars:
                    shown = shown[: max_chars - 1] + "…"
                text = (
                    f'<text x="{x + 3:.1f}" y="{y + row_height - 5}" '
                    f'font-size="11" font-family="monospace">'
                    f"{html.escape(shown)}</text>"
                )
            rects.append(
                f'<g class="frame"><rect x="{x:.1f}" y="{y}" '
                f'width="{max(w, 1.0):.1f}" height="{row_height - 1}" '
                f'fill="{_frame_color(node.name)}" rx="2">'
                f"<title>{tip}</title></rect>{text}"
                f"<!-- {label} --></g>"
            )
        cx = x
        for name in sorted(node.children):
            child = node.children[name]
            emit(child, cx, depth + 1)
            cx += child.value / total * width if total else 0.0

    emit(root, 0.0, 0)
    height = (max_depth + 1) * row_height + 10
    svg = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        + "".join(rects)
        + "</svg>"
    )
    note = (
        f"{total} samples, {len(samples)} distinct stacks"
        if total
        else "no samples collected (workload too short for the interval?)"
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:monospace;margin:16px}"
        ".frame rect:hover{stroke:#000;stroke-width:1}</style>"
        f"</head><body><h2>{html.escape(title)}</h2>"
        f"<p>{note}</p>{svg}</body></html>\n"
    )


def write_flamegraph(
    path: str | Path,
    samples: dict[tuple[str, ...], int],
    title: str = "repro flamegraph",
) -> Path:
    """Write :func:`flamegraph_html` output to ``path``; returns it."""
    path = Path(path)
    path.write_text(flamegraph_html(samples, title=title))
    return path
