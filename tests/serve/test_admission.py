"""Tests for admission control and circuit breaking: the bounded-queue
property, brownout hysteresis, the breaker lifecycle (with an injectable
clock), and the /metrics visibility of both."""

import random
import threading

import pytest

from repro.obs.expo import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionConfig,
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
)


class TestAdmissionConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"inflight_limit": 0},
            {"brownout_fraction": 0.0},
            {"brownout_fraction": 1.5},
            {"retry_after_s": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs)


class TestAdmissionController:
    def test_admits_until_capacity_then_sheds(self):
        ctl = AdmissionController(AdmissionConfig(queue_capacity=3))
        assert [ctl.try_admit("unix") for _ in range(3)] == [None] * 3
        assert ctl.try_admit("unix") == "queue_full"
        assert ctl.queue_depth == 3

    def test_inflight_limit_is_per_transport(self):
        ctl = AdmissionController(
            AdmissionConfig(queue_capacity=100, inflight_limit=2)
        )
        assert ctl.try_admit("unix") is None
        assert ctl.try_admit("unix") is None
        assert ctl.try_admit("unix") == "inflight_limit"
        # The other transport has its own budget.
        assert ctl.try_admit("http") is None

    def test_release_frees_inflight_but_not_queue(self):
        ctl = AdmissionController(
            AdmissionConfig(queue_capacity=100, inflight_limit=1)
        )
        assert ctl.try_admit("unix") is None
        assert ctl.try_admit("unix") == "inflight_limit"
        ctl.note_dequeued()
        # Still inflight until the future resolves.
        assert ctl.try_admit("unix") == "inflight_limit"
        ctl.release("unix")
        assert ctl.try_admit("unix") is None

    def test_bounded_queue_property(self):
        """Capacity C, N >> C submissions: accepted + shed == N and the
        depth never exceeds C — the invariant the chaos harness pins
        against the live daemon, here against the ledger itself."""
        capacity = 7
        n = 500
        ctl = AdmissionController(
            AdmissionConfig(queue_capacity=capacity, inflight_limit=n + 1)
        )
        rng = random.Random(42)
        peak = 0
        for _ in range(n):
            if ctl.try_admit("unix") is None:
                peak = max(peak, ctl.queue_depth)
            # Drain a random amount, like the batch loop would.
            if rng.random() < 0.4:
                drained = rng.randint(1, 3)
                ctl.note_dequeued(drained)
                for _ in range(drained):
                    ctl.release("unix")
        snap = ctl.snapshot()
        assert snap["accepted"] + snap["shed_total"] == n
        assert peak <= capacity
        assert snap["peak_depth"] <= capacity
        assert snap["shed"].get("queue_full", 0) == snap["shed_total"]

    def test_bounded_under_concurrent_submitters(self):
        capacity = 5
        per_thread = 200
        ctl = AdmissionController(
            AdmissionConfig(queue_capacity=capacity, inflight_limit=10_000)
        )

        def submitter():
            for _ in range(per_thread):
                if ctl.try_admit("unix") is None:
                    ctl.note_dequeued()
                    ctl.release("unix")

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = ctl.snapshot()
        assert snap["accepted"] + snap["shed_total"] == 8 * per_thread
        assert snap["peak_depth"] <= capacity
        assert snap["queue_depth"] == 0 and snap["inflight_total"] == 0

    def test_brownout_engages_and_clears(self):
        ctl = AdmissionController(
            AdmissionConfig(queue_capacity=10, brownout_fraction=0.5)
        )
        for _ in range(4):
            ctl.try_admit("unix")
        assert not ctl.brownout
        ctl.try_admit("unix")  # depth 5 == threshold
        assert ctl.brownout
        assert ctl.snapshot()["brownouts"] == 1
        ctl.note_dequeued(3)
        assert not ctl.brownout
        # Re-entering brownout counts again.
        for _ in range(3):
            ctl.try_admit("unix")
        assert ctl.brownout and ctl.snapshot()["brownouts"] == 2

    def test_shed_counter_reaches_registry(self):
        registry = MetricsRegistry()
        ctl = AdmissionController(
            AdmissionConfig(queue_capacity=1), registry=registry
        )
        ctl.try_admit("unix")
        ctl.try_admit("unix")
        assert registry.counter("serve.shed").value == 1
        assert registry.counter("serve.shed.queue_full").value == 1

    def test_publish_gauges(self):
        registry = MetricsRegistry()
        ctl = AdmissionController(AdmissionConfig(queue_capacity=4))
        ctl.try_admit("unix")
        ctl.try_admit("http")
        ctl.publish(registry)
        assert registry.gauge("serve.queue_depth").value == 2
        assert registry.gauge("serve.queue_capacity").value == 4
        assert registry.gauge("serve.inflight").value == 2
        assert registry.gauge("serve.inflight.unix").value == 1
        text = prometheus_text(registry, namespace="repro")
        assert "repro_serve_queue_depth" in text


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0)

    def test_lifecycle(self):
        """K consecutive failures open; short-circuit while open; the
        half-open probe's success closes; every transition is counted."""
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)
        assert b.state == BREAKER_CLOSED

        for _ in range(2):
            assert b.allow()
            b.record_failure()
        assert b.state == BREAKER_CLOSED  # streak below K
        assert b.allow()
        b.record_failure()
        assert b.state == BREAKER_OPEN and b.opened == 1

        # While open: refused, counted, retry hint counts down.
        assert not b.allow()
        assert b.short_circuits == 1
        clock.advance(4.0)
        assert b.retry_after_s() == pytest.approx(6.0)
        assert not b.allow()

        # Cooldown elapsed: exactly one probe admitted.
        clock.advance(6.0)
        assert b.allow()
        assert b.state == BREAKER_HALF_OPEN
        assert not b.allow()  # second caller waits for the probe
        b.record_success()
        assert b.state == BREAKER_CLOSED and b.reclosed == 1
        assert b.retry_after_s() == 0.0

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        b.record_failure()
        assert b.state == BREAKER_OPEN
        clock.advance(5.0)
        assert b.allow()  # probe
        b.record_failure()
        assert b.state == BREAKER_OPEN and b.opened == 2
        assert b.retry_after_s() == pytest.approx(5.0)

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == BREAKER_CLOSED


class TestBreakerBoard:
    def test_per_class_isolation(self):
        board = BreakerBoard(failure_threshold=1, cooldown_s=30.0)
        board.get("anticipatory").record_failure()
        assert board.get("anticipatory").state == BREAKER_OPEN
        assert board.get("local").state == BREAKER_CLOSED
        assert board.names() == ["anticipatory", "local"]

    def test_get_is_idempotent(self):
        board = BreakerBoard()
        assert board.get("x") is board.get("x")

    def test_publish_state_gauges_in_metrics_text(self):
        clock = FakeClock()
        board = BreakerBoard(
            failure_threshold=1, cooldown_s=10.0, clock=clock
        )
        board.get("anticipatory").record_failure()
        board.get("local").record_success()
        registry = MetricsRegistry()
        board.publish(registry)
        assert registry.gauge("serve.breaker.anticipatory.state").value == 1
        assert registry.gauge("serve.breaker.local.state").value == 0
        text = prometheus_text(registry, namespace="repro")
        assert "repro_serve_breaker_anticipatory_state 1" in text
        assert "repro_serve_breaker_local_state 0" in text

        # Transition to half-open is visible on the next publish.
        clock.advance(10.0)
        assert board.get("anticipatory").allow()
        board.publish(registry)
        assert registry.gauge("serve.breaker.anticipatory.state").value == 2
