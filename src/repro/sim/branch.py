"""Branch-prediction model for trace execution.

Anticipatory scheduling "works well in conjunction with hardware branch
prediction which enables the lookahead window to be filled with instructions
from the basic block that is predicted to be executed next" (paper §1).  When
the prediction is wrong, the eagerly executed next-block instructions are
rolled back and the window refills — which we model as an overlap barrier
plus a flush penalty at the mispredicted block's entry
(:func:`repro.sim.window.simulate_trace`).

This module samples misprediction patterns and reports the distribution of
trace completion times, so experiments can show how the benefit of
anticipatory scheduling scales with prediction accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ir.basicblock import Trace
from ..machine.model import MachineModel, single_unit_machine
from .window import SimResult, simulate_trace


@dataclass(frozen=True)
class BranchModel:
    """Per-boundary prediction accuracy and the flush penalty in cycles."""

    accuracy: float = 0.9
    penalty: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        if self.penalty < 0:
            raise ValueError("penalty must be >= 0")


@dataclass
class PredictionStudy:
    """Monte-Carlo completion-time statistics under a branch model."""

    mean_makespan: float
    best_makespan: int  # all boundaries predicted correctly
    worst_makespan: int  # every boundary mispredicted
    samples: list[int]


def run_with_prediction(
    trace: Trace,
    block_orders: Sequence[Sequence[str]],
    model: BranchModel,
    machine: MachineModel | None = None,
    trials: int = 32,
    seed: int | np.random.Generator | None = 0,
) -> PredictionStudy:
    """Sample misprediction patterns (iid per block boundary) and simulate."""
    machine = machine or single_unit_machine()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    best = simulate_trace(trace, block_orders, machine).makespan
    worst = simulate_trace(
        trace,
        block_orders,
        machine,
        mispredicted_blocks=range(1, trace.num_blocks),
        misprediction_penalty=model.penalty,
    ).makespan
    samples: list[int] = []
    for _ in range(trials):
        missed = [
            b
            for b in range(1, trace.num_blocks)
            if rng.random() >= model.accuracy
        ]
        sim = simulate_trace(
            trace,
            block_orders,
            machine,
            mispredicted_blocks=missed,
            misprediction_penalty=model.penalty,
        )
        samples.append(sim.makespan)
    return PredictionStudy(
        mean_makespan=float(np.mean(samples)),
        best_makespan=best,
        worst_makespan=worst,
        samples=samples,
    )
