"""Coverage for Schedule/graph accessors added during development."""

from repro.core import Schedule
from repro.ir import graph_from_edges
from repro.workloads import figure1_bb1


class TestGlobalIdleTimes:
    def test_single_unit_equals_idle_times(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 3})
        assert s.global_idle_times() == s.idle_times() == [1, 2]

    def test_multi_unit_global_stall(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 4}, {"a": ("any", 0), "b": ("any", 1)})
        # Unit 0 idle 1-4, unit 1 idle 0-3; both idle only at 1,2,3.
        assert s.global_idle_times() == [1, 2, 3]

    def test_spanning_instruction_blocks_global_idle(self):
        g = graph_from_edges([], nodes=["a", "b"], exec_times={"a": 4})
        s = Schedule(g, {"a": 0, "b": 5}, {"a": ("any", 0), "b": ("any", 1)})
        assert s.global_idle_times() == [4]


class TestGraphIndexAccessors:
    def test_node_index_matches_program_order(self):
        g = figure1_bb1()
        for i, n in enumerate(g.nodes):
            assert g.node_index(n) == i

    def test_reachability_row(self):
        g = figure1_bb1()
        row = g.reachability_row("x")
        desc = {g.nodes[i] for i in range(len(g)) if row[i]}
        assert desc == {"w", "b", "a", "r"}

    def test_analysis_cache_cleared_on_mutation(self):
        g = figure1_bb1()
        g.analysis_cache["probe"] = 1
        g.add_node("fresh")
        assert "probe" not in g.analysis_cache


class TestHashAndDigest:
    def _pair(self):
        """Two schedules equal in starts but differing only in units."""
        g = graph_from_edges([], nodes=["a", "b"])
        s1 = Schedule(g, {"a": 0, "b": 0}, {"a": ("any", 0), "b": ("any", 1)})
        s2 = Schedule(g, {"a": 0, "b": 0}, {"a": ("any", 1), "b": ("any", 0)})
        return s1, s2

    def test_hash_covers_units(self):
        # Regression: hashing only ``starts`` collided multi-FU schedules
        # that differ solely in unit assignment while __eq__ said unequal.
        s1, s2 = self._pair()
        assert s1 != s2
        assert hash(s1) != hash(s2)

    def test_equal_schedules_hash_equal(self):
        g = graph_from_edges([("a", "b", 1)])
        s1 = Schedule(g, {"a": 0, "b": 2})
        s2 = Schedule(g, {"a": 0, "b": 2})
        assert s1 == s2 and hash(s1) == hash(s2)

    def test_digest_is_stable_sha256_hex(self):
        g = graph_from_edges([("a", "b", 1)])
        s = Schedule(g, {"a": 0, "b": 2})
        d = s.digest()
        assert len(d) == 64 and d == s.digest()
        # Pinned: must never depend on PYTHONHASHSEED or process identity.
        assert d == (
            "a6825851dd9c12fef8aac2b027253dc0"
            "459a51c3d6056e4da0924d5f663b7c48"
        )

    def test_digest_separates_units(self):
        s1, s2 = self._pair()
        assert s1.digest() != s2.digest()

    def test_module_level_digest_matches_method(self):
        from repro.core.schedule import schedule_digest

        g = graph_from_edges([("a", "b", 1)])
        s = Schedule(g, {"a": 0, "b": 2})
        assert schedule_digest(s.starts, s.units) == s.digest()
