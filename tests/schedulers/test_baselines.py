"""Unit tests for the local baseline schedulers."""

import pytest

from repro.ir import ANY, graph_from_edges
from repro.machine import MachineModel, paper_machine
from repro.schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    fan_out_priority,
    gibbons_muchnick_schedule,
    schedule_with_priority,
    source_order_priority,
    warren_priority,
    warren_schedule,
)
from repro.workloads import figure1_bb1, random_dag, random_trace, reduction_trace


class TestPriorities:
    def test_source_order(self):
        g = figure1_bb1()
        assert source_order_priority(g) == ["e", "x", "b", "w", "a", "r"]

    def test_critical_path_prefers_deep_nodes(self):
        g = graph_from_edges([("a", "b", 1), ("b", "c", 1)], nodes=["z", "a", "b", "c"])
        pr = critical_path_priority(g)
        assert pr.index("a") < pr.index("z")

    def test_fan_out_breaks_ties_by_descendants(self):
        g = graph_from_edges(
            [("a", "s1", 0), ("a", "s2", 0), ("b", "s3", 0)],
        )
        pr = fan_out_priority(g)
        assert pr.index("a") < pr.index("b")

    def test_warren_priority_starts_long_latency_early(self):
        g = graph_from_edges(
            [("mul", "use1", 4), ("add", "use2", 4)],
            nodes=["add", "mul", "use1", "use2"],
        )
        # Same path lengths; warren breaks ties by own latency then order.
        pr = warren_priority(g)
        assert pr.index("mul") < pr.index("use1")


class TestSchedules:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_baselines_produce_valid_schedules(self, seed):
        g = random_dag(
            20, edge_probability=0.2, latencies=(0, 1, 2),
            exec_times=(1, 2), seed=seed,
        )
        m = paper_machine(4)
        for fn in (source_order_priority, critical_path_priority, fan_out_priority):
            schedule_with_priority(g, fn, m).validate()
        gibbons_muchnick_schedule(g, m).validate()
        warren_schedule(g, m).validate()

    def test_critical_path_beats_source_order_on_adversarial_block(self):
        """Program order that buries the critical path: CP scheduling wins."""
        g = graph_from_edges(
            [("c1", "c2", 2), ("c2", "c3", 2)],
            nodes=["f1", "f2", "f3", "c1", "c2", "c3"],
        )
        m = paper_machine(1)
        src = schedule_with_priority(g, source_order_priority, m).makespan
        cp = schedule_with_priority(g, critical_path_priority, m).makespan
        assert cp < src

    def test_gibbons_muchnick_pays_latency_early(self):
        g = graph_from_edges(
            [("ld", "use", 2)], nodes=["ld", "o1", "o2", "use"]
        )
        s = gibbons_muchnick_schedule(g, paper_machine(1))
        assert s.start("ld") == 0
        assert s.makespan == 4  # ld o1 o2 use with latency hidden

    def test_block_orders_with_priority(self):
        t = random_trace(3, 4, seed=2)
        orders = block_orders_with_priority(t, critical_path_priority, paper_machine(2))
        assert len(orders) == 3
        for i, o in enumerate(orders):
            assert sorted(o) == sorted(t.block_nodes(i))

    def test_warren_on_typed_machine(self):
        t = reduction_trace()
        from repro.machine import RS6000_LIKE

        s = warren_schedule(t.graph, RS6000_LIKE)
        s.validate()
        # loads on the memory unit, adds on fixed: overlap must happen.
        busy_classes = {u[0] for u in s.busy_units()}
        assert {"memory", "fixed"} <= busy_classes
