"""Unit tests for the Schedule value type."""

import pytest

from repro.core import SINGLE_UNIT, Schedule, ScheduleError
from repro.ir import graph_from_edges
from repro.machine import MachineModel


def simple_graph():
    return graph_from_edges([("a", "b", 1), ("a", "c", 0)])


class TestConstruction:
    def test_missing_node_rejected(self):
        g = simple_graph()
        with pytest.raises(ScheduleError, match="misses"):
            Schedule(g, {"a": 0, "b": 2})

    def test_unknown_node_rejected(self):
        g = simple_graph()
        with pytest.raises(ScheduleError, match="unknown"):
            Schedule(g, {"a": 0, "b": 2, "c": 1, "zzz": 5})

    def test_negative_start_rejected(self):
        g = simple_graph()
        with pytest.raises(ScheduleError, match="negative"):
            Schedule(g, {"a": -1, "b": 2, "c": 1})

    def test_default_single_unit(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "b": 3, "c": 1})
        assert s.unit("a") == SINGLE_UNIT


class TestAccessors:
    def test_makespan_and_completion(self):
        g = graph_from_edges([], nodes=["a", "b"], exec_times={"b": 3})
        s = Schedule(g, {"a": 0, "b": 1})
        assert s.completion("a") == 1
        assert s.completion("b") == 4
        assert s.makespan == 4

    def test_empty_schedule(self):
        from repro.ir import DependenceGraph

        s = Schedule(DependenceGraph(), {})
        assert s.makespan == 0
        assert s.idle_slots() == []

    def test_permutation_orders_by_start(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 1, "b": 3})
        assert s.permutation() == ["a", "c", "b"]

    def test_subpermutation(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 1, "b": 3})
        assert s.subpermutation(["b", "a"]) == ["a", "b"]


class TestIdleSlots:
    def test_idle_times_single_unit(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 2, "b": 4})
        assert s.idle_times() == [1, 3]

    def test_no_idle_when_packed(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 1, "b": 2})
        assert s.idle_times() == []

    def test_multicycle_occupies_range(self):
        g = graph_from_edges([], nodes=["a"], exec_times={"a": 3})
        s = Schedule(g, {"a": 0})
        assert s.idle_times() == []

    def test_tail_node(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 2, "b": 4})
        assert s.tail_node(1) == "a"
        assert s.tail_node(3) == "c"
        assert s.tail_node(0) is None

    def test_u_sets(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 2, "b": 4})
        assert s.u_sets() == [["a"], ["c"], ["b"]]

    def test_u_sets_no_idle(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 1, "b": 2})
        assert s.u_sets() == [["a", "c", "b"]]

    def test_multi_unit_idle(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(
            g, {"a": 0, "b": 2}, {"a": ("any", 0), "b": ("any", 1)}
        )
        # Unit 0 idle at 1, 2; unit 1 idle at 0, 1 (makespan 3).
        slots = s.idle_slots()
        assert {(sl.time, sl.unit) for sl in slots} == {
            (1, ("any", 0)),
            (2, ("any", 0)),
            (0, ("any", 1)),
            (1, ("any", 1)),
        }


class TestValidation:
    def test_valid_schedule(self):
        g = simple_graph()
        Schedule(g, {"a": 0, "c": 1, "b": 2}).validate()

    def test_latency_violation(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "b": 1, "c": 2})
        with pytest.raises(ScheduleError, match="dependence violated"):
            s.validate()

    def test_resource_violation(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 0})
        with pytest.raises(ScheduleError, match="runs both"):
            s.validate()
        assert not s.is_valid()

    def test_feasibility_and_tardiness(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 1, "b": 2})
        assert s.is_feasible({"b": 3})
        assert not s.is_feasible({"b": 2})
        assert s.tardiness({"b": 2}) == 1
        assert s.tardiness({"b": 5}) == 0


class TestPresentation:
    def test_gantt_contains_nodes_and_idle(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 2, "b": 4})
        text = s.gantt()
        for n in ["a", "b", "c"]:
            assert n in text

    def test_equality_and_copy(self):
        g = simple_graph()
        s = Schedule(g, {"a": 0, "c": 1, "b": 2})
        assert s == s.copy()
        t = Schedule(g, {"a": 0, "c": 2, "b": 4})
        assert s != t
