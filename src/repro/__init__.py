"""repro — a full reproduction of *Anticipatory Instruction Scheduling*
(Vivek Sarkar & Barbara Simons, SPAA 1996).

Anticipatory instruction scheduling rearranges instructions *within* each
basic block so that a trace of blocks completes as fast as possible on a
processor with a hardware lookahead window, without ever moving an
instruction across a block boundary.  The package provides:

- :mod:`repro.ir` — instructions, dependence graphs (plain and
  ⟨latency, distance⟩ loop graphs), basic blocks, traces, CFGs, a small
  textual ISA;
- :mod:`repro.core` — the Rank Algorithm, Move_Idle_Slot/Delay_Idle_Slots,
  Procedure Merge/Chop, Algorithm Lookahead, the §5 loop algorithms, legality
  checking, and §4.2 heuristics;
- :mod:`repro.machine` — machine models (functional units, window size);
- :mod:`repro.sim` — a cycle-accurate lookahead-window simulator, loop
  steady-state analysis, branch-prediction studies;
- :mod:`repro.schedulers` — the baselines of the paper's related-work
  section plus an exact brute-force oracle;
- :mod:`repro.workloads` — the paper's figure examples and synthetic
  workload generators;
- :mod:`repro.analysis` — metrics, tables, output verification;
- :mod:`repro.obs` — observability: pipeline spans/counters, cycle-level
  simulator event traces, JSONL and Chrome-trace (Perfetto) exporters.

Quickstart::

    from repro import (
        MachineModel, algorithm_lookahead, simulate_trace,
    )
    from repro.workloads import figure2_trace

    machine = MachineModel(window_size=2)
    trace = figure2_trace()
    result = algorithm_lookahead(trace, machine)
    sim = simulate_trace(trace, result.block_orders, machine)
    print(result.block_orders, sim.makespan)
"""

from .core import (
    LookaheadResult,
    LoopScheduleResult,
    LoopTraceResult,
    Schedule,
    algorithm_lookahead,
    anticipatory_schedule,
    compute_ranks,
    delay_idle_slots,
    is_legal_schedule,
    local_block_orders,
    minimum_makespan_schedule,
    move_idle_slot,
    rank_schedule,
    schedule_block_with_late_idle_slots,
    schedule_loop_trace,
    schedule_single_block_loop,
)
from .ir import (
    BasicBlock,
    ControlFlowGraph,
    DependenceGraph,
    Instruction,
    LoopGraph,
    LoopTrace,
    Trace,
    build_trace,
    graph_from_edges,
    loop_from_edges,
    parse_trace,
)
from .machine import MachineModel, paper_machine, single_unit_machine
from .obs import SimEvent, SimTrace, TraceRecorder, recording
from .sim import (
    SimResult,
    periodic_initiation_interval,
    simulate_loop_order,
    simulate_trace,
    simulate_window,
    simulated_initiation_interval,
)

__version__ = "1.0.0"

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "DependenceGraph",
    "Instruction",
    "LookaheadResult",
    "LoopGraph",
    "LoopScheduleResult",
    "LoopTrace",
    "LoopTraceResult",
    "MachineModel",
    "Schedule",
    "SimEvent",
    "SimResult",
    "SimTrace",
    "Trace",
    "TraceRecorder",
    "algorithm_lookahead",
    "anticipatory_schedule",
    "build_trace",
    "compute_ranks",
    "delay_idle_slots",
    "graph_from_edges",
    "is_legal_schedule",
    "local_block_orders",
    "loop_from_edges",
    "minimum_makespan_schedule",
    "move_idle_slot",
    "paper_machine",
    "parse_trace",
    "periodic_initiation_interval",
    "rank_schedule",
    "recording",
    "schedule_block_with_late_idle_slots",
    "schedule_loop_trace",
    "schedule_single_block_loop",
    "simulate_loop_order",
    "simulate_trace",
    "simulate_window",
    "simulated_initiation_interval",
    "single_unit_machine",
]
