"""Random trace generators (sequences of basic blocks with cross-block
dependences) for the E5/E7/E8/E9 benchmark families."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ir.basicblock import BasicBlock, LoopTrace, Trace, block_from_graph
from ..ir.instruction import ANY
from .random_dag import _rng, random_dag


def random_trace(
    num_blocks: int,
    block_size: int | tuple[int, int],
    edge_probability: float = 0.25,
    cross_probability: float = 0.08,
    cross_span: int = 1,
    latencies: Sequence[int] = (0, 1),
    exec_times: Sequence[int] = (1,),
    fu_classes: Sequence[str] = (ANY,),
    seed: int | np.random.Generator | None = 0,
) -> Trace:
    """A trace of ``num_blocks`` random basic blocks.

    ``block_size`` is either a fixed size or an inclusive (lo, hi) range
    sampled per block.  ``cross_probability`` is the probability of a
    dependence edge between a pair of instructions in different blocks at
    block distance ≤ ``cross_span`` (latency sampled from ``latencies``);
    these are the edges that make anticipatory scheduling interesting — with
    none, blocks overlap freely and local scheduling with idle-delaying is
    already near-optimal.
    """
    rng = _rng(seed)
    blocks: list[BasicBlock] = []
    members: list[list[str]] = []
    for b in range(num_blocks):
        if isinstance(block_size, tuple):
            lo, hi = block_size
            size = int(rng.integers(lo, hi + 1))
        else:
            size = block_size
        g = random_dag(
            size,
            edge_probability=edge_probability,
            latencies=latencies,
            exec_times=exec_times,
            fu_classes=fu_classes,
            seed=rng,
            prefix=f"b{b}_",
        )
        blocks.append(block_from_graph(f"BB{b + 1}", g))
        members.append(g.nodes)
    lat = list(latencies)
    cross: list[tuple[str, str, int]] = []
    for bi in range(num_blocks):
        for bj in range(bi + 1, min(bi + cross_span, num_blocks - 1) + 1):
            for u in members[bi]:
                for v in members[bj]:
                    if rng.random() < cross_probability:
                        cross.append((u, v, int(rng.choice(lat))))
    return Trace(blocks, cross_edges=cross)


def random_loop_trace(
    num_blocks: int,
    block_size: int | tuple[int, int],
    edge_probability: float = 0.25,
    cross_probability: float = 0.08,
    carried_probability: float = 0.06,
    carried_latencies: Sequence[int] = (1, 2, 4),
    latencies: Sequence[int] = (0, 1),
    seed: int | np.random.Generator | None = 0,
) -> LoopTrace:
    """A loop enclosing a random trace (paper §5.1): the trace plus
    distance-1 carried edges from late blocks back into early ones."""
    rng = _rng(seed)
    base = random_trace(
        num_blocks,
        block_size,
        edge_probability=edge_probability,
        cross_probability=cross_probability,
        latencies=latencies,
        seed=rng,
    )
    carried: list[tuple[str, str, int, int]] = []
    clat = list(carried_latencies)
    order = base.program_order()
    for u in order:
        for v in order:
            bu, bv = base.block_index(u), base.block_index(v)
            if bu >= bv and rng.random() < carried_probability:
                carried.append((u, v, int(rng.choice(clat)), 1))
    return LoopTrace(base.blocks, base.cross_edges, carried)


def chain_of_blocks(
    num_blocks: int,
    block_graphs: Sequence,
    seam_latency: int = 1,
    seed: int | np.random.Generator | None = 0,
    seam_edges_per_boundary: int = 1,
) -> Trace:
    """Wire pre-built block graphs into a trace with ``seam_edges_per_
    boundary`` random sink→source latency edges across each boundary —
    a controlled way to create seam stalls for the ablation benchmarks."""
    rng = _rng(seed)
    if len(block_graphs) != num_blocks:
        raise ValueError("need exactly one graph per block")
    blocks = [
        block_from_graph(f"BB{i + 1}", g) for i, g in enumerate(block_graphs)
    ]
    cross: list[tuple[str, str, int]] = []
    for i in range(num_blocks - 1):
        sinks = blocks[i].graph.sinks()
        sources = blocks[i + 1].graph.sources()
        for _ in range(seam_edges_per_boundary):
            u = sinks[int(rng.integers(len(sinks)))]
            v = sources[int(rng.integers(len(sources)))]
            if (u, v, seam_latency) not in cross:
                cross.append((u, v, seam_latency))
    return Trace(blocks, cross_edges=cross)
