"""Core algorithms: Rank Algorithm, idle-slot delaying, Algorithm Lookahead,
loop scheduling, legality checking, and the §4.2 heuristic generalizations."""

from .chop import ChopResult, chop
from .general import (
    anticipatory_schedule,
    class_demand,
    compute_ranks_split,
    delay_idle_slots_by_demand,
)
from .idle import (
    IdleMoveResult,
    delay_idle_slots,
    makespan_deadlines,
    move_idle_slot,
    schedule_block_with_late_idle_slots,
)
from .legality import (
    Inversion,
    block_orders_of,
    inversions,
    is_legal_schedule,
    satisfies_ordering_constraint,
    satisfies_window_constraint,
)
from .lookahead import (
    LookaheadResult,
    LookaheadStep,
    algorithm_lookahead,
    local_block_orders,
)
from .loops import (
    LoopCandidate,
    LoopScheduleResult,
    LoopTraceResult,
    schedule_loop_trace,
    schedule_single_block_loop,
    single_sink_transform,
    single_source_transform,
)
from .merge import MergeCarry, MergeResult, merge
from .rank import (
    RankEngine,
    compute_ranks,
    default_deadline,
    fill_deadlines,
    list_schedule,
    minimum_makespan_schedule,
    rank_priority_list,
    rank_schedule,
    rank_schedule_lenient,
)
from .schedule import (
    SINGLE_UNIT,
    IdleSlot,
    Schedule,
    ScheduleError,
    Unit,
)
from .tardiness import TardinessResult, max_lateness, minimize_tardiness

__all__ = [
    "ChopResult",
    "IdleMoveResult",
    "IdleSlot",
    "Inversion",
    "LookaheadResult",
    "LookaheadStep",
    "LoopCandidate",
    "LoopScheduleResult",
    "LoopTraceResult",
    "MergeCarry",
    "MergeResult",
    "RankEngine",
    "SINGLE_UNIT",
    "Schedule",
    "ScheduleError",
    "TardinessResult",
    "Unit",
    "algorithm_lookahead",
    "anticipatory_schedule",
    "block_orders_of",
    "chop",
    "class_demand",
    "compute_ranks",
    "compute_ranks_split",
    "default_deadline",
    "delay_idle_slots",
    "delay_idle_slots_by_demand",
    "fill_deadlines",
    "inversions",
    "is_legal_schedule",
    "list_schedule",
    "local_block_orders",
    "makespan_deadlines",
    "max_lateness",
    "merge",
    "minimize_tardiness",
    "minimum_makespan_schedule",
    "move_idle_slot",
    "rank_priority_list",
    "rank_schedule",
    "rank_schedule_lenient",
    "satisfies_ordering_constraint",
    "satisfies_window_constraint",
    "schedule_block_with_late_idle_slots",
    "schedule_loop_trace",
    "schedule_single_block_loop",
    "single_sink_transform",
    "single_source_transform",
]
