"""Unit tests for loop-carried dependence derivation."""

import pytest

from repro.ir import Instruction
from repro.ir.loop_builder import build_loop_graph
from repro.workloads import FIG3_SCHEDULE2, figure3_instructions, figure3_loop


def instr(name, reads=(), writes=(), loads=(), stores=(), lat=1, branch=False):
    return Instruction(
        name=name,
        reads=tuple(reads),
        writes=tuple(writes),
        loads=tuple(loads),
        stores=tuple(stores),
        latency=lat,
        is_branch=branch,
    )


class TestFigure3Derivation:
    def test_contains_every_paper_edge(self):
        derived = build_loop_graph(figure3_instructions())
        manual = figure3_loop()
        dset = {(e.src, e.dst, e.distance): e.latency for e in derived.edges()}
        for e in manual.edges():
            key = (e.src, e.dst, e.distance)
            assert key in dset, f"missing paper edge {key}"
            assert dset[key] == e.latency

    def test_extras_are_latency_zero_false_deps(self):
        """The derivation adds only latency-0 carried WAR/WAW edges the
        paper's figure omits (they never constrain a schedule)."""
        derived = build_loop_graph(figure3_instructions())
        manual = figure3_loop()
        mset = {(e.src, e.dst, e.distance) for e in manual.edges()}
        extras = [
            e
            for e in derived.edges()
            if (e.src, e.dst, e.distance) not in mset
        ]
        assert extras
        assert all(e.latency == 0 and e.distance == 1 for e in extras)

    def test_derived_graph_reproduces_figure3_results(self):
        from repro.core import schedule_single_block_loop
        from repro.machine import paper_machine
        from repro.sim import simulated_initiation_interval

        loop = build_loop_graph(figure3_instructions())
        m = paper_machine(1)
        res = schedule_single_block_loop(loop, m)
        assert simulated_initiation_interval(loop, res.order, m) == 6
        assert tuple(res.order) == FIG3_SCHEDULE2


class TestCarriedKinds:
    def test_carried_raw(self):
        seq = [instr("w", writes=["r"], lat=3), instr("r", reads=["r"])]
        # r@k+1 reads what w@k+1 wrote (intra RAW), not w@k: the
        # intra-iteration write kills the carried RAW.
        g = build_loop_graph(seq)
        carried = {(e.src, e.dst): e for e in g.carried_edges()}
        assert ("w", "r") not in carried or carried[("w", "r")].latency == 0

    def test_carried_raw_survives_without_kill(self):
        # acc += x: acc@k+1 reads acc written in iteration k.
        seq = [instr("acc", reads=["a", "x"], writes=["a"], lat=2)]
        g = build_loop_graph(seq)
        self_edges = [e for e in g.carried_edges() if e.src == e.dst]
        assert len(self_edges) == 1
        assert self_edges[0].latency == 2

    def test_carried_war(self):
        seq = [instr("use", reads=["r"]), instr("def", writes=["r"], lat=4)]
        g = build_loop_graph(seq)
        # use@k -> def@k (intra WAR, dist 0) and use@k -> def@k+1 carried.
        carried = {(e.src, e.dst): e.latency for e in g.carried_edges()}
        assert carried[("use", "def")] == 0

    def test_carried_memory(self):
        seq = [
            instr("st", stores=["buf"], lat=2),
            instr("ld", loads=["buf"]),
        ]
        g = build_loop_graph(seq)
        carried = {(e.src, e.dst): e.latency for e in g.carried_edges()}
        assert carried[("st", "ld")] == 2  # store@k feeds load@k+1 too
        assert carried[("ld", "st")] == 0  # WAR wraps around

    def test_control_dependences_intra_only(self):
        seq = [instr("a"), instr("br", branch=True)]
        g = build_loop_graph(seq)
        indep = {(e.src, e.dst): e.latency for e in g.independent_edges()}
        assert indep[("a", "br")] == 0
        assert not any(
            e.dst == "br" and e.src == "a" for e in g.carried_edges()
        )

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            build_loop_graph([])

    def test_bad_distance_rejected(self):
        with pytest.raises(ValueError, match="max_distance"):
            build_loop_graph([instr("a")], max_distance=0)
