"""Isomorphism-safe canonical forms and content digests for scheduling
requests.

A million-user scheduling workload is a stream of highly repetitive
kernels: the *same* loop bodies and basic-block shapes arrive over and over
with different SSA names and shuffled program order of independent
instructions.  To turn those repeats into cache hits, the serve cache keys
on a **canonical form** of the request — a deterministic relabeling of
``(block DAG, latencies, exec times, FU classes, deadlines, machine
config, scheduler choice)`` that is invariant under node renaming — rather
than on the raw request text.

The digest is a sha256 over the canonical JSON.  Explicitly **not**
Python's builtin ``hash()``: that is randomized per process by
``PYTHONHASHSEED`` and (see :meth:`repro.core.schedule.Schedule.__hash__`
before its fix) easy to under-specify; sha256 of a canonical serialization
is stable across processes, sessions and machines, so the on-disk store
survives daemon restarts.

Canonicalization algorithm
--------------------------

A Weisfeiler–Leman-style iterative partition refinement over the trace's
dependence graph:

1. every node starts with a structural colour ``(block index, exec time,
   fu class, deadline)`` — names excluded by construction;
2. colours are repeatedly refined with the sorted multisets of
   ``(edge latency, neighbour colour)`` over successors and predecessors,
   until the partition stops splitting (at most *n* rounds);
3. the canonical order sorts nodes by final colour, breaking exact colour
   ties (structurally indistinguishable nodes) by program order.

Step 3's tie-break keeps the mapping *aligned with the scheduler's own
tie-breaking*: the pipeline breaks priority ties by program index, never by
name, so for any request that is an order-preserving relabeling of a cached
one, translating the cached canonical schedule through the new request's
canonical labeling reproduces the scheduler's output bit for bit (pinned by
``tests/serve/test_canonical.py::TestEquivariance``).  Structurally
indistinguishable nodes are interchangeable by definition, so the digest
remains invariant under program-order permutation of independent
instructions as well.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping

from ..ir.basicblock import BasicBlock, Trace
from ..machine.model import MachineModel

#: Version of the canonical payload schema (bump on any change that can
#: alter a digest — old cache entries must not alias new ones).
CANONICAL_VERSION = 1


def _refine(trace: Trace, deadlines: Mapping[str, int] | None) -> dict[str, int]:
    """Final colour rank per node after WL-style partition refinement."""
    graph = trace.graph
    nodes = graph.nodes  # program order
    deadlines = deadlines or {}

    def ranks_from(keys: Mapping[str, object]) -> dict[str, int]:
        order = sorted({keys[n] for n in nodes})  # type: ignore[type-var]
        rank = {key: i for i, key in enumerate(order)}
        return {n: rank[keys[n]] for n in nodes}

    init = {
        n: (
            trace.block_of[n],
            graph.exec_time(n),
            graph.fu_class(n),
            n in deadlines,
            deadlines.get(n, 0),
        )
        for n in nodes
    }
    colours = ranks_from(init)
    distinct = len(set(colours.values()))
    while distinct < len(nodes):
        signatures = {
            n: (
                colours[n],
                tuple(
                    sorted(
                        (lat, colours[v])
                        for v, lat in graph.successors(n).items()
                    )
                ),
                tuple(
                    sorted(
                        (lat, colours[u])
                        for u, lat in graph.predecessors(n).items()
                    )
                ),
            )
            for n in nodes
        }
        colours = ranks_from(signatures)
        now_distinct = len(set(colours.values()))
        if now_distinct == distinct:  # partition stable: refinement done
            break
        distinct = now_distinct
    return colours


def canonical_order(
    trace: Trace, deadlines: Mapping[str, int] | None = None
) -> list[str]:
    """Node names by canonical id: final colour, then program order for
    structurally indistinguishable ties."""
    colours = _refine(trace, deadlines)
    index = {n: i for i, n in enumerate(trace.graph.nodes)}
    return sorted(trace.graph.nodes, key=lambda n: (colours[n], index[n]))


def machine_signature(machine: MachineModel) -> dict:
    """The machine-config part of the canonical payload."""
    return {
        "window": machine.window_size,
        "fus": sorted(machine.fu_counts.items()),
        "issue": machine.issue_width,
    }


@dataclass(frozen=True)
class CanonicalForm:
    """One request's canonical identity.

    ``order`` maps canonical ids back to the request's own node names
    (``order[cid] == name``); ``payload`` is the canonical JSON document the
    digest hashes.  Everything downstream of the cache speaks canonical
    ids, so two isomorphic requests share an entry and each translates the
    stored schedule through its own ``order``.
    """

    digest: str
    order: tuple[str, ...]
    payload: dict

    def canonical_id(self, name: str) -> int:
        return self.order.index(name)

    def id_map(self) -> dict[str, int]:
        """Request name -> canonical id."""
        return {n: i for i, n in enumerate(self.order)}

    def names(self, canonical_ids) -> list[str]:
        """Canonical ids -> request names, preserving sequence order."""
        return [self.order[c] for c in canonical_ids]


def canonical_form(
    trace: Trace,
    machine: MachineModel,
    scheduler: str,
    deadlines: Mapping[str, int] | None = None,
) -> CanonicalForm:
    """Canonicalize one scheduling request.

    The payload covers everything the schedule depends on — block DAG
    (per-node block membership, exec times, FU classes, optional
    deadlines), latency-labelled edges, machine config and scheduler choice
    — and nothing it does not (node names, block names).
    """
    order = canonical_order(trace, deadlines)
    cid = {n: i for i, n in enumerate(order)}
    graph = trace.graph
    deadlines = deadlines or {}
    nodes_field = [
        [
            trace.block_of[n],
            graph.exec_time(n),
            graph.fu_class(n),
            deadlines.get(n),
        ]
        for n in order
    ]
    edges_field = sorted(
        [cid[u], cid[v], lat] for u, v, lat in graph.edges()
    )
    payload = {
        "v": CANONICAL_VERSION,
        "scheduler": scheduler,
        "machine": machine_signature(machine),
        "blocks": [len(bb) for bb in trace.blocks],
        "nodes": nodes_field,
        "edges": edges_field,
    }
    return CanonicalForm(
        digest=payload_digest(payload), order=tuple(order), payload=payload
    )


def payload_digest(payload: dict) -> str:
    """sha256 hex digest of a canonical payload's compact JSON."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def relabel_trace(trace: Trace, mapping: Mapping[str, str]) -> Trace:
    """A structurally identical trace with nodes renamed through
    ``mapping`` (missing keys keep their name, program order preserved).

    The relabeled trace is order-preservingly isomorphic to the original,
    so its canonical digest — and, through the cache, its served schedule —
    must match; tests and the serve smoke use this to generate
    guaranteed-isomorphic request variants.
    """
    blocks = [
        BasicBlock(name=bb.name, graph=bb.graph.relabeled(mapping))
        for bb in trace.blocks
    ]
    cross = [
        (mapping.get(u, u), mapping.get(v, v), lat)
        for u, v, lat in trace.cross_edges
    ]
    return Trace(blocks, cross_edges=cross)
