"""Schema-versioned run reports and report comparison (the regression gate).

A :class:`RunReport` is the one-JSON-document artifact every benchmark run
leaves behind: named metrics (scalars, nested tables, or
:class:`~repro.obs.metrics.MetricsRegistry` summaries), per-phase span
wall-times, and provenance (git SHA, Python version, platform, machine and
window configuration, seed).  ``benchmarks/common.py::emit_metrics`` writes
one per benchmark into ``benchmarks/results/``; ``repro report`` renders
them; ``repro compare`` diffs two of them and the CI bench-smoke job gates
on the result.

Comparison semantics (:func:`compare_reports`)
----------------------------------------------

Metric trees are flattened to dotted paths (``runs.0.wall_s``) and compared
leaf by leaf:

- **wall-time leaves** — any path with a segment containing ``wall`` or
  ending in ``_s``/``_ns``/``_us``, plus everything under ``phases`` — are
  thresholded: an increase beyond ``threshold_pct`` percent is a regression,
  anything else is noise;
- **every other leaf is invariant** — makespans, stall cycles, ranks, block
  orders are deterministic, so *any* drift (either direction, or a missing
  leaf) fails the gate;
- leaves only in the new report are reported as ``added`` but do not fail —
  committed baselines are regenerated in the same PR that adds a metric.
"""

from __future__ import annotations

import json
import math
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

#: Version of the RunReport JSON schema.  v1 was the ad-hoc
#: ``{name, schema_version, metrics}`` document of the first emit_metrics;
#: v2 adds ``phases`` and ``provenance`` and nails the comparison contract.
RUNREPORT_SCHEMA_VERSION = 2


@dataclass
class RunReport:
    """One run's metrics, per-phase wall-times and provenance."""

    name: str
    metrics: dict[str, object] = field(default_factory=dict)
    #: Wall-clock seconds per pipeline phase (``TraceRecorder.phase_walltimes``).
    phases: dict[str, float] = field(default_factory=dict)
    #: Where the numbers came from: git SHA, Python version, platform,
    #: machine/window configuration, seed.
    provenance: dict[str, object] = field(default_factory=dict)
    schema_version: int = RUNREPORT_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "schema_version": self.schema_version,
            "metrics": self.metrics,
            "phases": self.phases,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "RunReport":
        if not isinstance(doc, Mapping) or "metrics" not in doc:
            raise ValueError("not a RunReport document (no 'metrics' field)")
        version = doc.get("schema_version", 1)
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"bad RunReport schema_version: {version!r}")
        if version > RUNREPORT_SCHEMA_VERSION:
            raise ValueError(
                f"RunReport schema_version {version} is newer than this "
                f"reader (supports <= {RUNREPORT_SCHEMA_VERSION})"
            )
        return cls(
            name=str(doc.get("name", "")),
            metrics=dict(doc["metrics"]),
            phases=dict(doc.get("phases", {})),
            provenance=dict(doc.get("provenance", {})),
            schema_version=version,
        )

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def collect_provenance(
    machine=None, seed: int | None = None, **extra
) -> dict[str, object]:
    """Standard provenance block: git SHA, Python version, platform, the
    machine/window configuration, and the workload seed.

    ``machine`` is a :class:`~repro.machine.model.MachineModel` (or ``None``);
    arbitrary extra keys are passed through.
    """
    out: dict[str, object] = {
        "python": platform.python_version(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "argv0": Path(sys.argv[0]).name if sys.argv else "",
    }
    sha = _git_sha()
    if sha:
        out["git_sha"] = sha
    if machine is not None:
        out["machine"] = {
            "window_size": machine.window_size,
            "fu_counts": dict(machine.fu_counts),
            "issue_width": machine.issue_width,
        }
    if seed is not None:
        out["seed"] = seed
    out.update(extra)
    return out


def flatten_metrics(value, path: str = "") -> dict[str, object]:
    """Flatten nested dicts/lists to ``{dotted.path: leaf}`` (lists indexed
    numerically); scalars map to themselves under their path."""
    out: dict[str, object] = {}
    if isinstance(value, Mapping):
        for key in value:
            sub = f"{path}.{key}" if path else str(key)
            out.update(flatten_metrics(value[key], sub))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            sub = f"{path}.{i}" if path else str(i)
            out.update(flatten_metrics(item, sub))
    else:
        out[path] = value
    return out


_TIMING_SUFFIXES = ("_s", "_ns", "_us", "_ms")


def is_timing_path(path: str) -> bool:
    """True when the dotted metric path denotes a wall-time measurement
    (thresholded in comparisons rather than held invariant)."""
    if path == "phases" or path.startswith("phases."):
        return True
    for segment in path.split("."):
        if "wall" in segment or segment.endswith(_TIMING_SUFFIXES):
            return True
    return False


@dataclass(frozen=True)
class Delta:
    """One compared metric leaf."""

    metric: str
    baseline: object
    new: object
    #: ``ok`` | ``regression`` | ``drift`` | ``removed`` | ``added``
    status: str
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "drift", "removed")


@dataclass
class ReportDiff:
    """Outcome of comparing two RunReports."""

    deltas: list[Delta]
    threshold_pct: float

    @property
    def failures(self) -> list[Delta]:
        return [d for d in self.deltas if d.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def changed(self) -> list[Delta]:
        return [d for d in self.deltas if d.status != "ok"]


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compare_leaf(path: str, base, new, threshold_pct: float) -> Delta:
    if _is_number(base) and _is_number(new):
        if is_timing_path(path):
            if base > 0:
                pct = (new - base) / base * 100.0
            else:
                pct = 0.0 if new <= 0 else math.inf
            if pct > threshold_pct:
                return Delta(
                    path, base, new, "regression",
                    f"+{pct:.1f}% > threshold {threshold_pct:g}%",
                )
            return Delta(path, base, new, "ok", f"{pct:+.1f}% (wall time)")
        if math.isclose(base, new, rel_tol=1e-9, abs_tol=1e-12):
            return Delta(path, base, new, "ok")
        return Delta(path, base, new, "drift", "invariant metric changed")
    if base != new:
        return Delta(path, base, new, "drift", "invariant metric changed")
    return Delta(path, base, new, "ok")


def compare_reports(
    baseline: RunReport, new: RunReport, threshold_pct: float = 25.0
) -> ReportDiff:
    """Diff two RunReports leaf-by-leaf (see module docstring for the
    semantics).  ``phases`` are compared as wall-times under ``phases.``."""
    flat_base = flatten_metrics(baseline.metrics)
    flat_new = flatten_metrics(new.metrics)
    flat_base.update(flatten_metrics(baseline.phases, "phases"))
    flat_new.update(flatten_metrics(new.phases, "phases"))

    deltas: list[Delta] = []
    for path in sorted(set(flat_base) | set(flat_new)):
        if path not in flat_new:
            deltas.append(
                Delta(path, flat_base[path], None, "removed",
                      "metric missing from new report")
            )
        elif path not in flat_base:
            deltas.append(
                Delta(path, None, flat_new[path], "added",
                      "metric not in baseline (regenerate baselines)")
            )
        else:
            deltas.append(
                _compare_leaf(path, flat_base[path], flat_new[path],
                              threshold_pct)
            )
    return ReportDiff(deltas=deltas, threshold_pct=threshold_pct)


def iter_report_paths(directory: str | Path) -> Iterator[Path]:
    """All RunReport JSON files in ``directory``, sorted by name (skips
    files that fail to parse as a report)."""
    for path in sorted(Path(directory).glob("*.json")):
        try:
            RunReport.load(path)
        except (OSError, ValueError, json.JSONDecodeError):
            continue
        yield path
