"""Cycle-level event tracing of the window simulator: stall accounting on
hand-built streams with known stall counts (including the barrier-penalty
path), window-advance accounting, and deadlock diagnostics."""

import pytest

from repro import graph_from_edges, parse_trace
from repro.machine import paper_machine
from repro.obs import TraceRecorder, recording
from repro.sim import SimulationDeadlock, simulate_trace, simulate_window

TWO_BLOCK = """
block top
  a op=li  defs=r1 lat=1
  b op=li  defs=r2 lat=1
  c op=mul defs=r3 uses=r1,r2 lat=4
block bottom
  d op=add defs=r4 uses=r3 lat=1
"""


class TestStallAccounting:
    def test_latency_chain_known_stalls(self):
        # a completes at 1; b ready at 1+2=3 -> stalls at cycles 1 and 2.
        g = graph_from_edges([("a", "b", 2)])
        r = simulate_window(g, ["a", "b"], paper_machine(2), collect_trace=True)
        assert r.stall_cycles == 2
        assert r.trace is not None
        assert r.trace.stall_cycles == 2
        stall_cycles = sorted(
            e.cycle for e in r.trace.events if e.kind == "stall"
        )
        assert stall_cycles == [1, 2]

    def test_no_stalls_on_independent_stream(self):
        g = graph_from_edges([], nodes=["a", "b", "c"])
        r = simulate_window(g, ["a", "b", "c"], paper_machine(3), collect_trace=True)
        assert r.stall_cycles == 0
        assert r.trace.stall_cycles == 0
        assert r.trace.issue_count == 3

    def test_trace_matches_result_on_two_block_trace(self):
        t = parse_trace(TWO_BLOCK)
        r = simulate_trace(
            t, [["a", "b", "c"], ["d"]], paper_machine(2), collect_trace=True
        )
        assert r.trace.stall_cycles == r.stall_cycles
        # Every stall event names the instruction it blames.
        assert all(
            e.node for e in r.trace.events if e.kind in ("stall", "barrier_wait")
        )

    def test_barrier_penalty_path(self):
        # Mispredicted entry to block 1: d may not issue until a, b, c have
        # completed (cycle 4, c's mul finishing) plus 3 penalty cycles -> d
        # issues at max(8, ready) with barrier_wait stalls in between.
        t = parse_trace(TWO_BLOCK)
        r = simulate_trace(
            t,
            [["a", "b", "c"], ["d"]],
            paper_machine(2),
            mispredicted_blocks=[1],
            misprediction_penalty=3,
            collect_trace=True,
        )
        assert r.trace.stall_cycles == r.stall_cycles
        kinds = r.trace.counts()
        assert kinds.get("barrier_wait", 0) > 0
        assert kinds.get("barrier_release", 0) == 1
        # Barrier stalls + ordinary stalls partition the stalled cycles.
        assert (
            r.trace.barrier_stall_cycles < r.trace.stall_cycles
            or r.trace.barrier_stall_cycles == r.trace.stall_cycles
        )

    def test_trace_off_by_default(self):
        g = graph_from_edges([("a", "b", 2)])
        r = simulate_window(g, ["a", "b"], paper_machine(2))
        assert r.trace is None

    def test_recorder_enables_and_receives_trace(self):
        g = graph_from_edges([("a", "b", 2)])
        with recording(TraceRecorder()) as rec:
            r = simulate_window(g, ["a", "b"], paper_machine(2))
        assert r.trace is not None
        assert rec.sim_traces == [r.trace]

    def test_explicit_false_overrides_recorder(self):
        g = graph_from_edges([("a", "b", 2)])
        with recording(TraceRecorder()) as rec:
            r = simulate_window(
                g, ["a", "b"], paper_machine(2), collect_trace=False
            )
        assert r.trace is None
        assert rec.sim_traces == []


class TestWindowAdvanceAccounting:
    def test_heads_monotone_and_reach_stream_end(self):
        t = parse_trace(TWO_BLOCK)
        r = simulate_trace(
            t, [["a", "b", "c"], ["d"]], paper_machine(2), collect_trace=True
        )
        heads = [e.head for e in r.trace.events if e.kind == "window_advance"]
        assert heads == sorted(heads)
        assert heads[-1] == 4  # head walked off the 4-instruction stream

    def test_occupancy_bounded_by_window(self):
        t = parse_trace(TWO_BLOCK)
        r = simulate_trace(
            t, [["a", "b", "c"], ["d"]], paper_machine(2), collect_trace=True
        )
        occs = [
            e.occupancy for e in r.trace.events if e.occupancy is not None
        ]
        assert occs and all(0 <= o <= 2 for o in occs)


class TestDeadlockDiagnostics:
    def test_reports_node_dependence_and_window(self):
        g = graph_from_edges([("a", "b", 0)])
        with pytest.raises(SimulationDeadlock) as exc_info:
            simulate_window(g, ["b", "a"], paper_machine(1))
        exc = exc_info.value
        assert exc.node == "b"
        assert exc.dependence == "a"
        assert exc.window == (0, 1)
        message = str(exc)
        assert "'b'" in message and "'a'" in message
        assert "[0, 1)" in message

    def test_shape1_blocker_beyond_window(self):
        # Shape 1: the head instruction's blocker sits entirely beyond the
        # window, so it can never enter and complete.
        g = graph_from_edges([("a", "b", 0)])
        with pytest.raises(SimulationDeadlock) as exc_info:
            simulate_window(g, ["b", "a"], paper_machine(1))
        exc = exc_info.value
        assert exc.node == "b"
        assert exc.dependence == "a"
        assert exc.window == (0, 1)
        assert exc.window_nodes == ("b",)
        message = str(exc)
        assert "beyond the window" in message
        assert "holding [b]" in message

    def test_shape2_blocker_blocked_inside_window(self):
        # Shape 2: the blocker IS in the window, but is itself blocked on an
        # instruction beyond it — the window holds [x, y]; x waits on y,
        # which waits on z at stream position 3.
        g = graph_from_edges([("y", "x", 0), ("z", "y", 0)], nodes=["w"])
        with pytest.raises(SimulationDeadlock) as exc_info:
            simulate_window(g, ["x", "y", "w", "z"], paper_machine(2))
        exc = exc_info.value
        assert exc.node == "x"
        assert exc.dependence == "y"
        assert exc.window == (0, 2)
        assert exc.window_nodes == ("x", "y")
        message = str(exc)
        assert "itself blocked inside the window" in message
        assert "holding [x y]" in message

    def test_deadlock_event_published_to_recorder(self):
        g = graph_from_edges([("a", "b", 0)])
        with recording(TraceRecorder()) as rec:
            with pytest.raises(SimulationDeadlock):
                simulate_window(g, ["b", "a"], paper_machine(1))
        assert len(rec.sim_traces) == 1
        kinds = rec.sim_traces[0].counts()
        assert kinds.get("deadlock") == 1
