"""Unit tests for machine models."""

import pytest

from repro.ir import ANY, BRANCH, FIXED, FLOAT, MEMORY, graph_from_edges
from repro.machine import (
    MachineModel,
    NO_LOOKAHEAD,
    PAPER_CORE,
    RS6000_LIKE,
    WIDE_VLIW,
    in_order_machine,
    paper_machine,
    single_unit_machine,
)


class TestValidation:
    def test_window_size(self):
        with pytest.raises(ValueError, match="window_size"):
            MachineModel(window_size=0)

    def test_needs_units(self):
        with pytest.raises(ValueError, match="at least one"):
            MachineModel(window_size=2, fu_counts={})

    def test_unit_count_positive(self):
        with pytest.raises(ValueError, match="count"):
            MachineModel(window_size=2, fu_counts={ANY: 0})

    def test_issue_width_positive(self):
        with pytest.raises(ValueError, match="issue_width"):
            MachineModel(window_size=2, issue_width=0)


class TestUnits:
    def test_single_unit_properties(self):
        m = single_unit_machine(4)
        assert m.is_single_unit
        assert m.total_units == 1
        assert m.unit_names() == [(ANY, 0)]

    def test_units_for_any_runs_anywhere(self):
        m = MachineModel(window_size=2, fu_counts={FIXED: 2, MEMORY: 1})
        assert len(m.units_for(ANY)) == 3

    def test_typed_instruction_units(self):
        m = MachineModel(window_size=2, fu_counts={FIXED: 2, ANY: 1})
        units = m.units_for(FIXED)
        # Its own class plus the universal unit.
        assert ((FIXED, 0) in units and (FIXED, 1) in units)
        assert (ANY, 0) in units

    def test_can_execute(self):
        m = MachineModel(window_size=2, fu_counts={FIXED: 1})
        g_ok = graph_from_edges([], nodes=["a"], fu_classes={"a": FIXED})
        g_bad = graph_from_edges([], nodes=["a"], fu_classes={"a": FLOAT})
        assert m.can_execute(g_ok)
        assert not m.can_execute(g_bad)


class TestPresets:
    def test_paper_core(self):
        assert PAPER_CORE.is_single_unit
        assert PAPER_CORE.window_size == 4

    def test_no_lookahead(self):
        assert NO_LOOKAHEAD.window_size == 1
        assert in_order_machine().window_size == 1

    def test_rs6000_shape(self):
        assert RS6000_LIKE.fu_counts[BRANCH] == 1
        assert RS6000_LIKE.total_units == 4

    def test_wide_vliw(self):
        assert WIDE_VLIW.total_units == 7

    def test_paper_machine_factory(self):
        assert paper_machine(9).window_size == 9
        assert paper_machine(9).is_single_unit
