"""E4 — paper Figure 8: the multiple-sources counter-example.

Regenerates S1 = (1 2 3)* with completion 5n−1 and S2 = (2 1 3)* with 4n,
asserts the general §5.2.3 algorithm picks S2 via the dual (sink) transform
while the source transform stays trapped by the symmetry, and benchmarks the
candidate search.
"""

from common import emit_metrics, emit_table

from repro.core import schedule_single_block_loop
from repro.machine import paper_machine
from repro.sim import simulate_loop_order
from repro.workloads import FIG8_SCHEDULE_S1, FIG8_SCHEDULE_S2, figure8_loop


def test_fig8_reproduction(benchmark):
    loop = figure8_loop()
    m1 = paper_machine(1)

    rows = []
    for n in (1, 2, 4, 8, 16):
        s1 = simulate_loop_order(loop, FIG8_SCHEDULE_S1, n, m1).makespan
        s2 = simulate_loop_order(loop, FIG8_SCHEDULE_S2, n, m1).makespan
        paper_s1 = 5 * n - 1 if n > 1 else 4
        paper_s2 = 4 * n
        assert s1 == paper_s1
        assert s2 == paper_s2
        rows.append([n, paper_s1, s1, paper_s2, s2])
    emit_table(
        "E4_fig8",
        ["iterations n", "paper S1 (5n−1)", "measured S1",
         "paper S2 (4n)", "measured S2"],
        rows,
        title="E4 / Figure 8: completion times of S1 = 1 2 3 and S2 = 2 1 3",
    )

    res = schedule_single_block_loop(loop, m1)
    assert tuple(res.order) == FIG8_SCHEDULE_S2
    assert res.best.kind == "sink" and res.best.pivot == "3"
    source_cands = [c for c in res.candidates if c.kind == "source"]
    assert all(tuple(c.order) == FIG8_SCHEDULE_S1 for c in source_cands)

    emit_table(
        "E4_fig8_candidates",
        ["transform", "pivot", "order", "completion (8 iters)"],
        [[c.kind, c.pivot, " ".join(c.order), c.completion] for c in res.candidates],
        title="E4 / Figure 8: §5.2.3 candidate schedules (dual transform wins)",
    )

    emit_metrics(
        "E4_fig8",
        {
            "completion_by_iterations": {
                str(n): {"s1": s1, "s2": s2} for n, _, s1, _, s2 in rows
            },
            "chosen_order": " ".join(res.order),
            "winning_transform": res.best.kind,
            "winning_pivot": res.best.pivot,
            "candidates": len(res.candidates),
        },
        machine=m1,
    )

    benchmark(lambda: schedule_single_block_loop(figure8_loop(), m1))
