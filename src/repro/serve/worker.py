"""The service's compute kernel: schedule one request under the robust
guard, ground-truth it in the window simulator, return plain data.

:func:`compute_request` is deliberately a **module-level function of one
JSON-able argument returning a JSON-able dict** so it satisfies the
picklability contract of :class:`repro.robust.ExecutionPool` — the daemon
can dispatch batches to fork-based worker processes and inherit the sweep
driver's timeout/retry/crash-blame machinery unchanged.  Everything a
response or cache entry needs is in the returned dict; no live objects
cross the process boundary.

Scheduling runs through :class:`~repro.robust.guard.GuardedScheduler`
with the request's own scheduler as the guarded primary: the emitted
orders on the happy path are exactly what :func:`compute_block_orders`
returns (the bit-identity contract with direct library calls is
untouched), but a budget blowout, crash-adjacent exception or verifier
rejection degrades to the verified always-legal per-block fallback, and
the result dict carries a ``"degraded"`` diagnostic the service surfaces
on the response and keeps out of the cache.  The guard's time budget is
the smaller of the configured worker budget (:func:`configure_guard`,
inherited by forked pool workers) and the request's remaining
``deadline_ms``.

Chaos hooks: when a :mod:`repro.serve.chaos` plan is installed, the plan
decides per request id whether this compute exits hard, hangs past the
pool's stall timeout, or schedules slowly enough to degrade — the
serve-tier fault injection the chaos harness drives.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Mapping

from ..core import local_block_orders  # noqa: F401  (re-export compat)
from ..core import algorithm_lookahead
from ..ir.basicblock import Trace
from ..machine.model import MachineModel
from ..obs import recorder as obs
from ..obs.pipeline import TraceContext
from ..robust.guard import GuardedScheduler
from ..schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    source_order_priority,
)
from ..sim import simulate_trace
from . import chaos
from .protocol import ScheduleRequest

#: Process-wide guard defaults (inherited by fork-based pool workers; the
#: service sets them once at construction via :func:`configure_guard`).
_guard_config: dict = {"time_budget_s": None, "node_budget": None}


def configure_guard(
    time_budget_s: float | None = None, node_budget: int | None = None
) -> dict:
    """Set the worker-side guard budgets for this process (and, through
    fork inheritance, for every pool worker it spawns).  Returns the
    previous configuration so tests can restore it."""
    previous = dict(_guard_config)
    _guard_config["time_budget_s"] = time_budget_s
    _guard_config["node_budget"] = node_budget
    return previous


@contextmanager
def request_trace_context(trace_id: str | None, parent_span_id: str | None):
    """Re-stamp the active recorder's context with the *request's* trace id
    for the duration of one compute.

    Inside a pool worker the active recorder is the per-batch
    ``spooled_cell`` recorder, whose context carries the daemon's batch
    trace id.  Spans recorded while this context manager is active are
    instead stamped with the distributed trace id the client supplied — so
    a request's worker-side spans join *its* trace across the fork
    boundary, not just the worker's pid.  No-op when tracing is off or the
    request is untraced.
    """
    rec = obs.get_recorder()
    if rec is None or trace_id is None:
        yield
        return
    previous = rec.context
    rec.context = TraceContext(
        trace_id=trace_id, parent_span_id=parent_span_id, pid=os.getpid()
    )
    try:
        yield
    finally:
        rec.context = previous


def compute_block_orders(
    trace: Trace, machine: MachineModel, scheduler: str
) -> list[list[str]]:
    """Dispatch on scheduler name — the same table ``repro schedule``
    uses, shared so the daemon can never drift from the CLI."""
    if scheduler == "anticipatory":
        return algorithm_lookahead(trace, machine).block_orders
    if scheduler == "local":
        return local_block_orders(trace, machine)
    if scheduler == "critical-path":
        return block_orders_with_priority(trace, critical_path_priority, machine)
    if scheduler == "source":
        return block_orders_with_priority(trace, source_order_priority, machine)
    raise ValueError(f"unknown scheduler {scheduler!r}")


def _guard_budget_s(request: ScheduleRequest) -> float | None:
    """The effective time budget: the configured worker budget tightened
    to the request's remaining deadline (whichever is smaller)."""
    budget = _guard_config["time_budget_s"]
    if request.deadline_ms is not None:
        deadline_s = request.deadline_ms / 1e3
        budget = deadline_s if budget is None else min(budget, deadline_s)
    return budget


def compute_schedule(
    request: ScheduleRequest, primary_delay_s: float | None = None
) -> dict:
    """Schedule + simulate one decoded request under the guard.

    The returned dict is the full uncached answer: emitted block orders,
    the simulated makespan / stall count, the runtime schedule's start
    times and unit assignments (needed so cache hits can reconstruct the
    response without re-running anything), the schedule's own content
    digest (:meth:`repro.core.schedule.Schedule.digest`), a ``"worker"``
    block — pid, per-phase wall times, the request's trace id — that rides
    back through the pool pickle so the service can graft worker spans
    into the request's span tree even when spooling is off, and (only when
    the guard fell back) a ``"degraded"`` diagnostic dict.

    ``primary_delay_s`` injects a sleep *inside* the guarded primary —
    the chaos harness's slow-scheduler fault; the guard's budget is the
    mechanism that turns it into a degradation instead of a hang.
    """

    def primary(trace: Trace, machine: MachineModel) -> list[list[str]]:
        if primary_delay_s is not None:
            time.sleep(primary_delay_s)
        return compute_block_orders(trace, machine, request.scheduler)

    guard = GuardedScheduler(
        machine=request.machine,
        time_budget_s=_guard_budget_s(request),
        node_budget=_guard_config["node_budget"],
        primary=primary,
    )
    with request_trace_context(request.trace_id, request.parent_span_id):
        t0 = time.perf_counter_ns()
        with obs.span(
            "serve.worker.schedule",
            scheduler=request.scheduler,
            trace_id=request.trace_id,
        ):
            guarded = guard.schedule(request.trace)
        orders = guarded.block_orders
        t1 = time.perf_counter_ns()
        with obs.span("serve.worker.simulate", trace_id=request.trace_id):
            sim = simulate_trace(request.trace, orders, request.machine)
        t2 = time.perf_counter_ns()
    schedule = sim.schedule
    out = {
        "block_orders": [list(o) for o in orders],
        "makespan": sim.makespan,
        "stall_cycles": sim.stall_cycles,
        "starts": dict(schedule.starts),
        "units": {n: list(u) for n, u in schedule.units.items()},
        "schedule_digest": schedule.digest(),
        "worker": {
            "pid": os.getpid(),
            "trace_id": request.trace_id,
            "start_ns": t0,
            "phases": {
                "schedule_ns": t1 - t0,
                "simulate_ns": t2 - t1,
            },
        },
    }
    if guarded.degraded is not None:
        out["degraded"] = guarded.degraded.to_dict()
    return out


def compute_request(doc: Mapping) -> dict:
    """Picklable pool entry point: wire dict in, result dict out.

    When a chaos plan is installed (inherited across the fork), the plan
    may order this compute to die or hang before any work happens — the
    crash-blame and stall-timeout paths the pool exists for — or to run
    its primary slowly enough that the guard degrades it.
    """
    request = ScheduleRequest.from_dict(doc)
    delay_s = None
    plan = chaos.active_plan()
    if plan is not None:
        action = plan.worker_action(request.id)
        if action == "exit":
            os._exit(23)
        if action == "hang":
            time.sleep(plan.hang_s)
        elif action == "slow":
            delay_s = plan.slow_s
    return compute_schedule(request, primary_delay_s=delay_s)
