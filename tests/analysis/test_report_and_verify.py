"""Unit tests for table rendering and output verification."""

import pytest

from repro.analysis import (
    OutputError,
    check_block_orders,
    format_table,
    verify_scheduler_output,
)
from repro.ir import Trace, block_from_graph, graph_from_edges
from repro.machine import paper_machine


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "n"], [["alpha", 1], ["b", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a", "b"], [[1]])


def make_trace():
    g1 = graph_from_edges([("a", "b", 1)])
    g2 = graph_from_edges([], nodes=["c"])
    return Trace([block_from_graph("B1", g1), block_from_graph("B2", g2)])


class TestVerify:
    def test_accepts_valid_orders(self):
        t = make_trace()
        verify_scheduler_output(t, [["a", "b"], ["c"]], paper_machine(2))

    def test_rejects_wrong_block_count(self):
        t = make_trace()
        with pytest.raises(OutputError, match="block orders"):
            check_block_orders(t, [["a", "b"]])

    def test_rejects_non_permutation(self):
        t = make_trace()
        with pytest.raises(OutputError, match="permutation"):
            check_block_orders(t, [["a", "a"], ["c"]])

    def test_rejects_cross_block_motion(self):
        t = make_trace()
        with pytest.raises(OutputError, match="permutation"):
            check_block_orders(t, [["a", "c"], ["b"]])

    def test_rejects_dependence_violating_order(self):
        t = make_trace()
        with pytest.raises(OutputError, match="dependence"):
            check_block_orders(t, [["b", "a"], ["c"]])
