"""Tests for the transport-independent service: cache semantics end to
end, batching, dedupe, error isolation, telemetry."""

from repro.machine.presets import PAPER_CORE, paper_machine
from repro.obs.pipeline import merge_spools
from repro.serve.canonical import relabel_trace
from repro.serve.protocol import ScheduleRequest
from repro.serve.service import ScheduleService
from repro.serve.worker import compute_request
from repro.workloads.traces import random_trace

IDENTITY_KEYS = ("block_orders", "makespan", "stall_cycles", "schedule_digest")


def _doc(seed=0, scheduler="anticipatory", machine=PAPER_CORE, rid=None):
    trace = random_trace(
        2 + seed % 2, (3, 5), cross_probability=0.2, latencies=(0, 1, 2),
        seed=seed,
    )
    return ScheduleRequest(
        trace=trace, machine=machine, scheduler=scheduler, id=rid
    ).to_dict()


def _identity(response):
    return {k: response[k] for k in IDENTITY_KEYS}


class TestCachePath:
    def test_second_identical_request_hits_without_recompute(self):
        svc = ScheduleService()
        doc = _doc(seed=1)
        first = svc.handle(doc)
        computes_before = svc.pool.batches
        second = svc.handle(doc)
        assert first["cached"] is False and second["cached"] is True
        assert svc.pool.batches == computes_before  # no scheduler run
        assert _identity(first) == _identity(second)
        assert svc.cache.hits == 1 and svc.cache.misses == 1

    def test_relabeled_isomorphic_request_hits_bit_identically(self):
        svc = ScheduleService()
        doc = _doc(seed=2)
        svc.handle(doc)
        request = ScheduleRequest.from_dict(doc)
        mapping = {
            n: f"ssa{i}" for i, n in enumerate(request.trace.graph.nodes)
        }
        renamed = ScheduleRequest(
            trace=relabel_trace(request.trace, mapping),
            machine=request.machine,
            scheduler=request.scheduler,
        ).to_dict()
        served = svc.handle(renamed)
        direct = compute_request(renamed)
        assert served["cached"] is True
        assert _identity(served) == {k: direct[k] for k in IDENTITY_KEYS}

    def test_different_window_misses(self):
        svc = ScheduleService()
        svc.handle(_doc(seed=3, machine=PAPER_CORE))
        other = svc.handle(_doc(seed=3, machine=paper_machine(2)))
        assert other["cached"] is False
        assert svc.cache.misses == 2

    def test_different_scheduler_misses(self):
        svc = ScheduleService()
        svc.handle(_doc(seed=3))
        other = svc.handle(_doc(seed=3, scheduler="local"))
        assert other["cached"] is False

    def test_miss_response_matches_direct_compute(self):
        svc = ScheduleService()
        for seed in range(5):
            doc = _doc(seed=seed, scheduler=("local", "anticipatory")[seed % 2])
            assert _identity(svc.handle(doc)) == {
                k: compute_request(doc)[k] for k in IDENTITY_KEYS
            }


class TestBatch:
    def test_within_batch_dedupe_computes_once(self):
        svc = ScheduleService()
        doc = _doc(seed=4)
        a, b, c = svc.handle_batch([doc, dict(doc), _doc(seed=5)])
        assert a["cached"] is False and b["cached"] is True
        assert c["cached"] is False
        assert _identity(a) == _identity(b)
        assert svc.cache.hits == 1 and svc.cache.misses == 2

    def test_bad_request_does_not_poison_batch(self):
        svc = ScheduleService()
        good = _doc(seed=6, rid="good")
        bad = {"scheduler": "nope", "id": "bad"}
        r_bad, r_good = svc.handle_batch([bad, good])
        assert r_bad["ok"] is False and r_bad["id"] == "bad"
        assert r_good["ok"] is True and r_good["id"] == "good"
        assert svc.errors == 1

    def test_responses_in_input_order(self):
        svc = ScheduleService()
        docs = [_doc(seed=s, rid=f"r{s}") for s in range(4)]
        responses = svc.handle_batch(list(reversed(docs)))
        assert [r["id"] for r in responses] == ["r3", "r2", "r1", "r0"]


class TestPersistence:
    def test_cache_survives_service_restart(self, tmp_path):
        store = tmp_path / "sched.jsonl"
        doc = _doc(seed=7)
        first = ScheduleService(cache_path=store).handle(doc)
        reborn = ScheduleService(cache_path=store)
        second = reborn.handle(doc)
        assert second["cached"] is True
        assert _identity(first) == _identity(second)


class TestTelemetry:
    def test_spool_dir_records_batches(self, tmp_path):
        spool = tmp_path / "spool"
        svc = ScheduleService(spool_dir=spool)
        svc.handle(_doc(seed=8))
        svc.handle(_doc(seed=8))
        merge = merge_spools(spool)
        assert merge.counters.get("serve.cache.miss") == 1
        assert merge.counters.get("serve.cache.hit") == 1
        names = {s.name for s in merge.spans}
        assert "serve.batch" in names and "serve.request" in names

    def test_registry_latency_histograms_per_class(self):
        svc = ScheduleService()
        svc.handle(_doc(seed=9))
        svc.handle(_doc(seed=10, scheduler="local"))
        assert "serve.request.anticipatory.duration_s" in svc.registry
        assert "serve.request.local.duration_s" in svc.registry
        assert svc.registry.counter("serve.requests").value == 2

    def test_run_report_shape(self):
        svc = ScheduleService()
        doc = _doc(seed=11)
        svc.handle(doc)
        svc.handle(doc)
        report = svc.run_report()
        assert report.metrics["requests"] == 2
        assert report.metrics["cache"]["hits"] == 1
        assert any(
            key.endswith(".duration_s") for key in report.metrics["latency"]
        )

    def test_stats_shape(self):
        svc = ScheduleService(jobs=1)
        svc.handle(_doc(seed=12))
        stats = svc.stats()
        assert stats["requests"] == 1 and stats["batches"] == 1
        assert stats["pool"]["jobs"] == 1
        assert stats["cache"]["misses"] == 1
