"""Command-line interface.

Usage (also via ``python -m repro``)::

    repro schedule prog.s --window 4 --scheduler anticipatory --simulate
    repro ranks prog.s --deadline 100
    repro loop prog.s --window 2 --iterations 8
    repro dot prog.s -o deps.dot

``prog.s`` uses the textual format of :mod:`repro.ir.parser` (see its
docstring or ``examples/``); ``loop`` treats a single-block program as a
loop body and derives its carried dependences automatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis.dot import loop_to_dot, trace_to_dot
from .analysis.report import format_table
from .core import algorithm_lookahead, compute_ranks, local_block_orders
from .core.loops import schedule_single_block_loop
from .ir.loop_builder import build_loop_graph
from .ir.parser import ParseError, parse_program, parse_trace
from .machine import (
    MachineModel,
    NO_LOOKAHEAD,
    PAPER_CORE,
    RS6000_LIKE,
    WIDE_VLIW,
)
from .schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    source_order_priority,
)
from .sim import simulate_loop_order, simulate_trace, simulated_initiation_interval

MACHINES = {
    "paper": PAPER_CORE,
    "inorder": NO_LOOKAHEAD,
    "rs6000": RS6000_LIKE,
    "vliw": WIDE_VLIW,
}


def _machine(args: argparse.Namespace) -> MachineModel:
    base = MACHINES[args.machine]
    if args.window is not None:
        base = MachineModel(
            window_size=args.window,
            fu_counts=dict(base.fu_counts),
            issue_width=base.issue_width,
        )
    return base


def _load_trace(path: str):
    return parse_trace(Path(path).read_text())


def cmd_schedule(args: argparse.Namespace) -> int:
    trace = _load_trace(args.file)
    machine = _machine(args)
    if args.scheduler == "anticipatory":
        orders = algorithm_lookahead(trace, machine).block_orders
    elif args.scheduler == "local":
        orders = local_block_orders(trace, machine)
    elif args.scheduler == "critical-path":
        orders = block_orders_with_priority(trace, critical_path_priority, machine)
    else:  # source
        orders = block_orders_with_priority(trace, source_order_priority, machine)
    for bb, order in zip(trace.blocks, orders):
        print(f"{bb.name}: {' '.join(order)}")
    if args.simulate:
        sim = simulate_trace(trace, orders, machine)
        print(f"completion: {sim.makespan} cycles "
              f"(stalls: {sim.stall_cycles}, W={machine.window_size})")
        print(sim.schedule.gantt())
    return 0


def cmd_ranks(args: argparse.Namespace) -> int:
    trace = _load_trace(args.file)
    deadlines = {n: args.deadline for n in trace.graph.nodes}
    ranks = compute_ranks(trace.graph, deadlines, _machine(args))
    rows = [
        [n, trace.blocks[trace.block_index(n)].name, ranks[n]]
        for n in sorted(trace.graph.nodes, key=lambda n: ranks[n])
    ]
    print(format_table(["instruction", "block", "rank"], rows,
                       title=f"ranks at deadline {args.deadline}"))
    return 0


def cmd_loop(args: argparse.Namespace) -> int:
    blocks = parse_program(Path(args.file).read_text())
    if len(blocks) != 1:
        print("error: 'loop' needs a single-block program", file=sys.stderr)
        return 2
    _, instructions = blocks[0]
    loop = build_loop_graph(instructions)
    machine = _machine(args)
    res = schedule_single_block_loop(loop, machine)
    print("carried dependences:")
    for e in loop.carried_edges():
        print(f"  {e.src} -> {e.dst}  <{e.latency},{e.distance}>")
    rows = [
        [c.kind, c.pivot or "-", " ".join(c.order),
         c.single_iteration_makespan, c.completion]
        for c in res.candidates
    ]
    print(format_table(
        ["transform", "pivot", "order", "1-iter", "horizon completion"],
        rows, title="candidate schedules (§5.2.3)",
    ))
    ii = simulated_initiation_interval(loop, res.order, machine)
    sim = simulate_loop_order(loop, res.order, args.iterations, machine)
    print(f"chosen order: {' '.join(res.order)}")
    print(f"steady-state II: {ii} cycles/iteration; "
          f"{args.iterations} iterations complete in {sim.makespan} cycles")
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    if args.loop:
        blocks = parse_program(Path(args.file).read_text())
        if len(blocks) != 1:
            print("error: --loop needs a single-block program", file=sys.stderr)
            return 2
        text = loop_to_dot(build_loop_graph(blocks[0][1]))
    else:
        text = trace_to_dot(_load_trace(args.file))
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anticipatory instruction scheduling (SPAA'96) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="program in the repro textual format")
        p.add_argument("--machine", choices=sorted(MACHINES), default="paper")
        p.add_argument("--window", "-w", type=int, default=None,
                       help="override the machine's lookahead window size")

    p = sub.add_parser("schedule", help="schedule a trace and print block orders")
    common(p)
    p.add_argument(
        "--scheduler",
        choices=["anticipatory", "local", "critical-path", "source"],
        default="anticipatory",
    )
    p.add_argument("--simulate", action="store_true",
                   help="execute the result on the window simulator")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("ranks", help="print Rank-Algorithm ranks")
    common(p)
    p.add_argument("--deadline", type=int, default=100)
    p.set_defaults(func=cmd_ranks)

    p = sub.add_parser("loop", help="schedule a single-block loop (§5.2)")
    common(p)
    p.add_argument("--iterations", "-n", type=int, default=8)
    p.set_defaults(func=cmd_loop)

    p = sub.add_parser("dot", help="emit Graphviz DOT for a program")
    common(p)
    p.add_argument("--loop", action="store_true",
                   help="derive and render the loop dependence graph")
    p.add_argument("--output", "-o", default=None)
    p.set_defaults(func=cmd_dot)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
