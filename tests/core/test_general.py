"""Unit tests for the §4.2 heuristic variants and the top-level dispatch."""

import pytest

from repro.core import (
    anticipatory_schedule,
    class_demand,
    compute_ranks,
    compute_ranks_split,
    delay_idle_slots_by_demand,
    minimum_makespan_schedule,
)
from repro.core.lookahead import LookaheadResult
from repro.core.loops import LoopScheduleResult, LoopTraceResult
from repro.ir import (
    ANY,
    FIXED,
    MEMORY,
    LoopTrace,
    block_from_graph,
    graph_from_edges,
)
from repro.machine import MachineModel, paper_machine
from repro.workloads import figure2_trace, figure3_loop, random_dag


class TestSplitRanks:
    def test_equals_whole_for_unit_times(self):
        g = random_dag(15, edge_probability=0.25, latencies=(0, 1), seed=4)
        d = {n: 30 for n in g.nodes}
        assert compute_ranks_split(g, d) == compute_ranks(g, d)

    def test_split_at_most_whole(self):
        """Splitting can only pack descendants later or equally, so split
        ranks are >= whole-insertion ranks (a weaker upper bound is fine;
        both are upper bounds)."""
        g = random_dag(
            12, edge_probability=0.3, latencies=(0, 1, 2),
            exec_times=(1, 2, 3), seed=8,
        )
        d = {n: 60 for n in g.nodes}
        whole = compute_ranks(g, d)
        split = compute_ranks_split(g, d)
        assert all(split[n] >= whole[n] for n in g.nodes)

    def test_multicycle_example(self):
        g = graph_from_edges([("a", "b", 0)], exec_times={"b": 3})
        d = {"a": 10, "b": 10}
        # whole insertion: b occupies 8..10, starts at 7, a completes by 7.
        assert compute_ranks(g, d)["a"] == 7
        assert compute_ranks_split(g, d)["a"] == 7


class TestClassDemand:
    def test_orders_by_pressure(self):
        g = graph_from_edges(
            [],
            nodes=["m1", "m2", "m3", "f1"],
            fu_classes={"m1": MEMORY, "m2": MEMORY, "m3": MEMORY, "f1": FIXED},
        )
        m = MachineModel(window_size=2, fu_counts={MEMORY: 1, FIXED: 1})
        assert class_demand(g, m)[0] == MEMORY

    def test_delay_by_demand_runs_all_units(self):
        g = graph_from_edges(
            [("m1", "f1", 2)],
            nodes=["m1", "m2", "f1"],
            fu_classes={"m1": MEMORY, "m2": MEMORY, "f1": FIXED},
        )
        m = MachineModel(window_size=2, fu_counts={MEMORY: 1, FIXED: 1})
        s = minimum_makespan_schedule(g, m)
        s2, _ = delay_idle_slots_by_demand(s, None, m)
        assert s2.makespan <= s.makespan
        s2.validate()


class TestDispatch:
    def test_trace_dispatch(self):
        res = anticipatory_schedule(figure2_trace(), paper_machine(2))
        assert isinstance(res, LookaheadResult)

    def test_loop_dispatch(self):
        res = anticipatory_schedule(figure3_loop(), paper_machine(1))
        assert isinstance(res, LoopScheduleResult)

    def test_loop_trace_dispatch(self):
        g1 = graph_from_edges([("a", "b", 1)])
        g2 = graph_from_edges([], nodes=["c"])
        lt = LoopTrace(
            [block_from_graph("B1", g1), block_from_graph("B2", g2)],
            carried_edges=[("c", "a", 1, 1)],
        )
        res = anticipatory_schedule(lt, paper_machine(2))
        assert isinstance(res, LoopTraceResult)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            anticipatory_schedule(42, paper_machine(2))  # type: ignore[arg-type]
