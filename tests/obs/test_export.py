"""Tests for the JSONL and Chrome trace-event exporters."""

import json

from repro import graph_from_edges
from repro.machine import paper_machine
from repro.obs import (
    TraceRecorder,
    chrome_trace_events,
    chrome_trace_path,
    read_jsonl,
    recording,
    sim_traces_from_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import simulate_window


def _record_run():
    """A recorder holding one span, one counter and one simulated trace."""
    g = graph_from_edges([("a", "b", 2), ("a", "c", 0)])
    with recording(TraceRecorder()) as rec:
        from repro.obs import count, span

        with span("rank", nodes=3):
            pass
        count("merge.relaxations", 2)
        result = simulate_window(g, ["a", "b", "c"], paper_machine(2))
    return rec, result


class TestJsonl:
    def test_round_trip(self, tmp_path):
        rec, result = _record_run()
        path = write_jsonl(tmp_path / "t.jsonl", rec)
        records = read_jsonl(path)
        types = {r["type"] for r in records}
        assert {"meta", "span", "counter", "sim_trace", "sim"} <= types
        meta = records[0]
        assert meta["format"] == "repro-trace"

        rebuilt = sim_traces_from_records(records)
        assert len(rebuilt) == 1
        assert rebuilt[0].stall_cycles == result.stall_cycles
        assert rebuilt[0].issue_count == 3
        assert rebuilt[0].window_size == 2

    def test_sim_trace_header_carries_stall_count(self, tmp_path):
        rec, result = _record_run()
        records = read_jsonl(write_jsonl(tmp_path / "t.jsonl", rec))
        header = next(r for r in records if r["type"] == "sim_trace")
        assert header["stall_cycles"] == result.stall_cycles
        assert header["window_size"] == 2


class TestChromeTrace:
    def test_valid_json_with_expected_phases(self, tmp_path):
        rec, _ = _record_run()
        path = write_chrome_trace(tmp_path / "t.chrome.json", rec)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "X" in phases  # spans + issue slices
        assert "M" in phases  # thread metadata
        assert "C" in phases  # occupancy counter
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "rank" in names  # the pipeline span
        assert {"a", "b", "c"} <= names  # issue slices

    def test_stall_instants_present(self):
        rec, result = _record_run()
        events = chrome_trace_events(rec)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == result.stall_cycles

    def test_chrome_trace_path_convention(self):
        assert chrome_trace_path("run.jsonl").name == "run.chrome.json"
        assert chrome_trace_path("run").name == "run.chrome.json"


class TestRecordsToRecorder:
    def test_waterfall_records_replay_through_chrome_exporter(self):
        from repro.obs.export import records_to_recorder
        from repro.obs.recorder import SpanRecord

        records = [
            {"type": "meta", "format": "repro-trace", "version": 2,
             "trace_id": "cafe", "pid": 10, "spans": 2, "sim_traces": 0},
            SpanRecord("serve.request", 1_000_000, 2_000_000, 0,
                       {}, 10, "cafe").to_dict(),
            SpanRecord("serve.worker.schedule", 1_500_000, 500_000, 2,
                       {}, 99, "cafe").to_dict(),
            {"type": "counter", "name": "serve.cache.miss", "value": 1},
        ]
        rec = records_to_recorder(records)
        assert rec.context.trace_id == "cafe" and rec.context.pid == 10
        assert [s.name for s in rec.spans] == [
            "serve.request", "serve.worker.schedule",
        ]
        assert rec.counters == {"serve.cache.miss": 1}
        events = chrome_trace_events(rec)
        slices = [e for e in events if e.get("ph") == "X"]
        assert {e["pid"] for e in slices} == {10, 99}
