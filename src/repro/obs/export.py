"""Trace exporters: JSONL and Chrome trace-event format.

Two output formats cover the two consumption modes:

- **JSONL** (:func:`write_jsonl`) — one self-describing JSON object per
  line, the machine-readable source of truth.  ``repro trace FILE`` replays
  it; any analysis script can stream it.  Line types: ``meta``, ``span``,
  ``counter``, ``sim_trace`` (header) and ``sim`` (one event).
- **Chrome trace-event JSON** (:func:`write_chrome_trace`) — openable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Pipeline
  spans appear as nested slices on a "pipeline (wall time)" track per
  process (cross-process traces merged from worker spools keep one track
  per worker pid, microsecond timebase); obs counters appear as Perfetto
  counter ("C"-phase) timelines next to the spans; each simulated
  execution gets its own "simulator" track on a 1 cycle = 1 µs timebase
  with issue slices, stall instants and a window-occupancy counter track.

Schema versions: v1 files carry no ``pid``/``trace_id`` on spans and no
``counter_sample`` records; readers treat those fields as absent and still
load v1 files (``repro trace`` replays either).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from .events import SimEvent, SimTrace, STALL_KINDS
from .recorder import SpanRecord, TraceRecorder

JSONL_FORMAT = "repro-trace"
#: v2 adds span ``pid``/``trace_id`` fields, ``counter_sample`` records and
#: the meta ``trace_id``; v1 files remain loadable.
JSONL_VERSION = 2

_PID = 1
_PIPELINE_TID = 1
_SIM_TID_BASE = 2


def recorder_records(recorder: TraceRecorder) -> Iterator[dict]:
    """All records of ``recorder`` as JSON-serializable dicts (the JSONL
    line stream)."""
    yield {
        "type": "meta",
        "format": JSONL_FORMAT,
        "version": JSONL_VERSION,
        "trace_id": recorder.context.trace_id,
        "pid": recorder.context.pid,
        "spans": len(recorder.spans),
        "sim_traces": len(recorder.sim_traces),
    }
    for s in recorder.spans:
        yield s.to_dict()
    for name, value in sorted(recorder.counters.items()):
        yield {"type": "counter", "name": name, "value": value}
    for t, name, value, pid in recorder.counter_samples:
        # Same absolute perf_counter_ns//1000 timebase as span start_us, so
        # replay can timestamp-order samples against spans across processes.
        yield {
            "type": "counter_sample",
            "t_us": t // 1000,
            "name": name,
            "value": value,
            "pid": pid,
        }
    for i, trace in enumerate(recorder.sim_traces):
        yield {
            "type": "sim_trace",
            "index": i,
            "label": trace.label,
            "window_size": trace.window_size,
            "instructions": trace.num_instructions,
            "events": len(trace.events),
            "stall_cycles": trace.stall_cycles,
        }
        for e in trace.events:
            yield {**e.to_dict(), "trace": i}


def write_jsonl(path: str | Path, recorder: TraceRecorder) -> Path:
    """Write the recorder's full record stream as JSONL; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        for record in recorder_records(recorder):
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file back into its record dicts (blank lines
    skipped)."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def records_to_recorder(records: list[dict]) -> TraceRecorder:
    """Rebuild a :class:`TraceRecorder` from parsed JSONL records — the
    inverse of :func:`recorder_records` (modulo the meta line).  Lets a
    trace fetched from elsewhere (e.g. a daemon's ``/debug/traces``
    waterfall) flow through the Chrome/Perfetto exporter unchanged."""
    from .pipeline import TraceContext

    recorder = TraceRecorder(sim_events=False, counter_samples=False)
    meta = next((r for r in records if r.get("type") == "meta"), None)
    if meta is not None and meta.get("trace_id"):
        recorder.context = TraceContext(
            trace_id=str(meta["trace_id"]),
            pid=int(meta.get("pid") or recorder.context.pid),
        )
    for r in records:
        kind = r.get("type")
        if kind == "span":
            recorder.spans.append(SpanRecord.from_dict(r))
        elif kind == "counter":
            recorder.counters[str(r["name"])] = int(r["value"])
        elif kind == "counter_sample":
            recorder.counter_samples.append(
                (
                    int(r["t_us"]) * 1000,
                    str(r["name"]),
                    int(r["value"]),
                    int(r.get("pid", 0)),
                )
            )
    recorder.spans.sort(key=lambda s: s.start_ns)
    for trace in sim_traces_from_records(records):
        recorder.add_sim_trace(trace)
    return recorder


def sim_traces_from_records(records: list[dict]) -> list[SimTrace]:
    """Rebuild :class:`SimTrace` objects from parsed JSONL records."""
    headers = [r for r in records if r.get("type") == "sim_trace"]
    traces: dict[int, SimTrace] = {}
    for h in headers:
        traces[h["index"]] = SimTrace(
            window_size=h["window_size"],
            num_instructions=h["instructions"],
            label=h.get("label", ""),
        )
    for r in records:
        if r.get("type") == "sim":
            idx = r.get("trace", 0)
            if idx not in traces:
                traces[idx] = SimTrace(window_size=0, num_instructions=0)
            traces[idx].events.append(SimEvent.from_dict(r))
    return [traces[i] for i in sorted(traces)]


def chrome_trace_events(recorder: TraceRecorder) -> list[dict]:
    """The recorder's streams as Chrome trace-event dicts.

    Cross-process traces (worker spans merged from telemetry spools carry
    their own ``pid``) get one "pipeline (wall time)" track per process,
    and obs counters are emitted as Perfetto counter ("C"-phase) timelines
    so counter trajectories render alongside the span slices.
    """
    own_pid = recorder.context.pid
    span_pids = sorted(
        {s.pid if s.pid is not None else own_pid for s in recorder.spans}
        | {own_pid}
    )
    events: list[dict] = []
    for pid in span_pids:
        role = "parent" if pid == own_pid else f"worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro {role}"},
            }
        )
        events.append(_thread_meta(_PIPELINE_TID, "pipeline (wall time)", pid))
    t0 = min((s.start_ns for s in recorder.spans), default=0)
    if recorder.counter_samples:
        t0 = min(t0, recorder.counter_samples[0][0]) if recorder.spans else (
            recorder.counter_samples[0][0]
        )
    for s in recorder.spans:
        events.append(
            {
                "name": s.name,
                "cat": "pipeline",
                "ph": "X",
                "ts": (s.start_ns - t0) / 1000,
                "dur": s.duration_ns / 1000,
                "pid": s.pid if s.pid is not None else own_pid,
                "tid": _PIPELINE_TID,
                "args": {k: _jsonable(v) for k, v in s.attrs.items()},
            }
        )
    # Obs counters as Perfetto counter timelines, one series per
    # (pid, counter name); the value is the recorder-cumulative total.
    for t, name, value, pid in recorder.counter_samples:
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": (t - t0) / 1000,
                "pid": pid,
                "tid": _PIPELINE_TID,
                "args": {"value": value},
            }
        )
    for i, trace in enumerate(recorder.sim_traces):
        tid = _SIM_TID_BASE + i
        label = trace.label or f"simulation {i}"
        events.append(
            _thread_meta(tid, f"{label} (1 cycle = 1 µs)", own_pid)
        )
        events.extend(_sim_trace_events(trace, tid, own_pid))
    return events


def _sim_trace_events(
    trace: SimTrace, tid: int, pid: int = _PID
) -> Iterator[dict]:
    for e in trace.events:
        if e.kind == "issue":
            yield {
                "name": e.node or "issue",
                "cat": "sim",
                "ph": "X",
                "ts": e.cycle,
                "dur": 1,
                "pid": pid,
                "tid": tid,
                "args": {"unit": e.unit, "head": e.head},
            }
        elif e.kind in STALL_KINDS or e.kind == "deadlock":
            yield {
                "name": e.kind,
                "cat": "sim",
                "ph": "i",
                "s": "t",
                "ts": e.cycle,
                "pid": pid,
                "tid": tid,
                "args": {"detail": e.detail},
            }
        if e.occupancy is not None:
            yield {
                "name": f"window occupancy (tid {tid})",
                "cat": "sim",
                "ph": "C",
                "ts": e.cycle,
                "pid": pid,
                "tid": tid,
                "args": {"occupancy": e.occupancy},
            }


def _thread_meta(tid: int, name: str, pid: int = _PID) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(path: str | Path, recorder: TraceRecorder) -> Path:
    """Write a Chrome trace-event JSON file (Perfetto-compatible); returns
    the path."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": {"format": JSONL_FORMAT, "version": JSONL_VERSION},
    }
    path.write_text(json.dumps(payload))
    return path


def chrome_trace_path(jsonl_path: str | Path) -> Path:
    """Conventional Chrome-trace sibling of a JSONL path
    (``trace.jsonl`` → ``trace.chrome.json``)."""
    path = Path(jsonl_path)
    return path.with_suffix(".chrome.json")
