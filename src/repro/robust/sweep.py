"""Crash-tolerant experiment-sweep driver.

An experiment sweep maps one cell function over a parameter grid.  The
previous driver (``benchmarks/common.py``) called ``future.result()`` with
no timeout and let a single worker crash (``BrokenProcessPool``) abort the
whole sweep, losing every sibling cell.  This driver keeps the sweep alive
under all of that:

- **per-cell timeouts** — when no cell completes for a full ``timeout_s``
  window, every still-running cell is declared hung and abandoned (or
  retried), and the worker pool is recycled so a wedged worker cannot
  block the sweep;
- **bounded retry with capped, jittered exponential backoff** — transient
  failures get ``retries`` extra attempts; sleeps grow as ``backoff_s *
  2**attempt`` but are clamped to ``backoff_cap_s`` and decorrelated by
  seeded jitter (see :mod:`repro.robust.backoff`), so a high retry count
  cannot stall the sweep for minutes and synchronized workers do not retry
  in lockstep;
- **worker-crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM kill) breaks only its own cell: completed siblings keep their
  results, and uncollected siblings are requeued *uncharged* (a broken
  shared pool poisons every outstanding future, so blame cannot be
  assigned there) into an isolation mode where each cell runs in its own
  single-worker pool — a broken pool then identifies the poisoned cell
  exactly, and it is recorded as a :class:`SweepFailure` once its attempts
  are exhausted;
- **JSONL checkpoint/resume** — each completed cell is appended to a
  checkpoint file as it finishes (pickle + base64 for exact round-trip
  fidelity, plus a human-readable preview); re-running with the same
  checkpoint recomputes only the missing cells, so an interrupted sweep
  resumes where it stopped and produces results identical to an
  uninterrupted run.

Results always come back in input order.  Cells must be independent; with
``jobs > 1`` the cell function must be a module-level (picklable)
callable, same as before.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time as _time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import multiprocessing

from .backoff import DEFAULT_BACKOFF_CAP_S, DEFAULT_BACKOFF_JITTER, RetryPolicy
from ..obs import recorder as obs
from ..obs.pipeline import (
    SpoolMerge,
    clear_spools,
    current_context,
    merge_spools,
    spooled_cell,
)


@dataclass(frozen=True)
class SweepFailure:
    """One sweep cell that could not be completed.

    Appears in ``SweepResult.results`` at the failed cell's position, so
    downstream shape logic can see exactly which cells are missing.
    """

    index: int
    error_type: str
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }

    def __str__(self) -> str:
        return (
            f"cell {self.index}: {self.error_type} after "
            f"{self.attempts} attempt(s): {self.message}"
        )


class SweepError(RuntimeError):
    """Raised by strict sweeps after the whole grid has been driven: some
    cells failed, but every completed sibling's result is preserved on the
    exception (``.results`` / ``.failures``)."""

    def __init__(self, failures: Sequence[SweepFailure], results: list) -> None:
        self.failures = list(failures)
        self.results = results
        lines = [f"{len(self.failures)} sweep cell(s) failed:"]
        lines += [f"  {f}" for f in self.failures]
        super().__init__("\n".join(lines))


@dataclass
class SweepResult:
    """Outcome of one sweep: per-cell results (a :class:`SweepFailure` at
    each failed position), the failure list, and bookkeeping counts."""

    results: list = field(default_factory=list)
    failures: list[SweepFailure] = field(default_factory=list)
    #: Cells loaded from the checkpoint instead of recomputed.
    resumed: int = 0
    #: Total cell executions, including retries.
    attempts: int = 0
    #: Times a worker pool was recycled (crash or timeout).
    pool_restarts: int = 0
    #: Merged worker telemetry (populated only for ``telemetry_dir`` sweeps).
    telemetry: SpoolMerge | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> int:
        return len(self.results) - len(self.failures)


# -- checkpoint format -------------------------------------------------------

_CHECKPOINT_VERSION = 1


def _encode_cell(index: int, value) -> str:
    """One checkpoint line: pickle for fidelity, repr preview for humans."""
    payload = base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")
    preview = repr(value)
    if len(preview) > 120:
        preview = preview[:117] + "..."
    return json.dumps(
        {
            "v": _CHECKPOINT_VERSION,
            "index": index,
            "pickle": payload,
            "preview": preview,
        }
    )


def load_checkpoint(path: str | os.PathLike) -> dict[int, object]:
    """Completed cells recorded in ``path`` (missing file → empty).

    Torn trailing lines (a crash mid-append) and unparseable records are
    skipped — resume recomputes those cells.
    """
    out: dict[int, object] = {}
    p = Path(path)
    if not p.exists():
        return out
    with p.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                if rec.get("v") != _CHECKPOINT_VERSION:
                    continue
                out[int(rec["index"])] = pickle.loads(
                    base64.b64decode(rec["pickle"])
                )
            except Exception:  # noqa: BLE001 - torn/corrupt line: recompute
                continue
    return out


# -- the driver --------------------------------------------------------------


def _normalize(params: Sequence[object]) -> list[tuple]:
    return [p if isinstance(p, tuple) else (p,) for p in params]


def _telemetry_cell(fn: Callable, args: tuple, directory, context, cell: int):
    """Run one cell under a spooled recorder so its spans, counters and sim
    traces survive the worker process (module level so pools can pickle
    it).  Exceptions propagate — a raising cell is still spooled
    (``ok=False``) because it still *executed*."""
    with spooled_cell(directory, context, cell):
        return fn(*args)


def run_sweep_robust(
    fn: Callable,
    params: Sequence[object],
    *,
    jobs: int = 1,
    timeout_s: float | None = None,
    retries: int = 1,
    backoff_s: float = 0.05,
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
    backoff_jitter: float = DEFAULT_BACKOFF_JITTER,
    backoff_seed: int | None = 0,
    checkpoint: str | os.PathLike | None = None,
    telemetry_dir: str | os.PathLike | None = None,
    isolate: bool = False,
) -> SweepResult:
    """Map ``fn`` over ``params`` (argument tuples; bare values are
    1-tuples), surviving worker crashes, hangs and interruptions.

    With ``jobs == 1`` cells run in-process (exceptions are retried, but
    ``timeout_s`` cannot preempt a running cell); with ``jobs > 1`` cells
    fan out over fork-based process pools that are recycled on breakage,
    and ``timeout_s`` bounds the time the sweep tolerates with *no* cell
    completing before declaring the running cells hung.
    ``checkpoint`` names a JSONL file appended to as cells finish and
    consulted before computing anything — pass the same path again to
    resume.  Returns a :class:`SweepResult`; failed cells appear as
    :class:`SweepFailure` entries instead of aborting the sweep.

    Retry sleeps follow a :class:`~repro.robust.backoff.RetryPolicy`:
    exponential in ``backoff_s``, clamped to ``backoff_cap_s`` and
    decorrelated by jitter seeded with ``backoff_seed`` (deterministic by
    default; sleeps never affect results or checkpoint contents).

    ``telemetry_dir`` turns on the cross-process telemetry pipeline: every
    cell execution (in-process or in a worker) runs under its own child
    :class:`~repro.obs.pipeline.TraceContext` and is spooled to
    ``telemetry_dir`` as it completes; at the end the spools are merged
    into the active recorder (if any) and attached to the result as
    ``result.telemetry``.  Counter totals and span-name counts are then
    identical between ``jobs=1`` and ``jobs=N`` runs of the same grid —
    only wall-clock differs.

    ``isolate`` keeps the fork boundary even when only one cell is
    pending: by default a single-cell sweep with ``jobs > 1`` is clamped
    to in-process execution (cheaper for sweeps), but a *serving* caller
    relies on the worker process as a blast shield — a crashing or hung
    cell must never take the host process with it — so
    :class:`~repro.robust.pool.ExecutionPool` always passes ``True``.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be > 0 or None")
    policy = RetryPolicy(
        base_s=backoff_s, cap_s=backoff_cap_s, jitter=backoff_jitter
    )
    backoff_rng = policy.rng(backoff_seed)
    calls = _normalize(params)
    n = len(calls)
    result = SweepResult(results=[None] * n)

    telemetry_ctx = None
    if telemetry_dir is not None:
        Path(telemetry_dir).mkdir(parents=True, exist_ok=True)
        clear_spools(telemetry_dir)
        telemetry_ctx = current_context()

    def run_cell(i: int):
        """Execute cell ``i`` in-process (spooled when telemetry is on)."""
        if telemetry_ctx is not None:
            return _telemetry_cell(
                fn, calls[i], telemetry_dir,
                telemetry_ctx.child(f"cell-{i}"), i,
            )
        return fn(*calls[i])

    def finish() -> SweepResult:
        """Merge worker spools into the active recorder before returning."""
        if telemetry_dir is not None:
            result.telemetry = merge_spools(telemetry_dir, obs.get_recorder())
        return result

    done = load_checkpoint(checkpoint) if checkpoint is not None else {}
    ckpt_fh = None
    if checkpoint is not None:
        Path(checkpoint).parent.mkdir(parents=True, exist_ok=True)
        ckpt_fh = open(checkpoint, "a", encoding="utf-8")

    try:
        recorded: set[int] = set()
        pending: list[int] = []
        for i in range(n):
            if i in done:
                result.results[i] = done[i]
                result.resumed += 1
                recorded.add(i)
            else:
                pending.append(i)

        def record(i: int, value) -> None:
            result.results[i] = value
            recorded.add(i)
            if ckpt_fh is not None:
                ckpt_fh.write(_encode_cell(i, value) + "\n")
                ckpt_fh.flush()

        def record_failure(i: int, exc_type: str, message: str, attempts: int) -> None:
            failure = SweepFailure(
                index=i,
                error_type=exc_type,
                message=message,
                attempts=attempts,
            )
            result.results[i] = failure
            result.failures.append(failure)
            recorded.add(i)
            obs.count("sweep.failures")

        max_attempts = retries + 1
        attempts = {i: 0 for i in pending}

        if not pending:
            return finish()
        if isolate and jobs > 1:
            # Keep at least two pool slots so the fork boundary survives a
            # single-cell batch (crash isolation beats the idle worker).
            jobs = min(jobs, max(len(pending), 2))
        else:
            jobs = max(1, min(jobs, len(pending)))

        with obs.span("sweep", cells=n, jobs=jobs):
            if jobs == 1:
                for i in pending:
                    while True:
                        attempts[i] += 1
                        result.attempts += 1
                        try:
                            record(i, run_cell(i))
                            break
                        except Exception as exc:  # noqa: BLE001
                            if attempts[i] >= max_attempts:
                                record_failure(
                                    i, type(exc).__name__, str(exc), attempts[i]
                                )
                                break
                            _time.sleep(
                                policy.delay_s(attempts[i], backoff_rng)
                            )
                return finish()

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )

            def submit(pool: ProcessPoolExecutor, i: int) -> Future:
                """Submit cell ``i``, spool-wrapped when telemetry is on."""
                if telemetry_ctx is not None:
                    return pool.submit(
                        _telemetry_cell,
                        fn,
                        calls[i],
                        os.fspath(telemetry_dir),
                        telemetry_ctx.child(f"cell-{i}"),
                        i,
                    )
                return pool.submit(fn, *calls[i])

            def settle(
                i: int, exc: BaseException, label: str, retry_later: list[int]
            ) -> None:
                """Record a failed attempt: final failure or requeue."""
                if attempts[i] >= max_attempts:
                    record_failure(i, label, str(exc), attempts[i])
                else:
                    retry_later.append(i)

            def kill_workers(pool: ProcessPoolExecutor) -> None:
                """Terminate a broken/hung pool's workers so a wedged or
                poisoned process cannot linger past the sweep."""
                try:
                    for proc in (pool._processes or {}).values():
                        proc.terminate()
                except Exception:  # noqa: BLE001 - best effort
                    pass

            def batch_round(cells: list[int]) -> tuple[list[int], bool]:
                """One shared-pool round: returns (cells to retry, whether
                the pool broke).  A broken pool poisons *every* uncollected
                future with BrokenProcessPool, so blame cannot be assigned
                here — uncollected cells are requeued uncharged and the
                caller switches to isolation mode."""
                pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
                futures: dict[Future, int] = {}
                for i in cells:
                    attempts[i] += 1
                    result.attempts += 1
                    futures[submit(pool, i)] = i
                retry_later: list[int] = []
                broken = False
                try:
                    remaining = dict(futures)
                    while remaining:
                        finished, _ = wait(
                            remaining,
                            timeout=timeout_s,
                            return_when=FIRST_COMPLETED,
                        )
                        if not finished:
                            # Stall timeout: no cell completed for a full
                            # timeout_s window — every still-running cell
                            # is declared hung.
                            raise FutureTimeoutError()
                        for f in finished:
                            i = remaining.pop(f)
                            try:
                                record(i, f.result())
                            except BrokenProcessPool:
                                raise
                            except Exception as exc:  # noqa: BLE001
                                settle(i, exc, type(exc).__name__, retry_later)
                except FutureTimeoutError:
                    broken = True
                    timeout_exc = FutureTimeoutError(
                        f"no completion within {timeout_s:g}s"
                    )
                    for f, i in futures.items():
                        if i in recorded or i in retry_later:
                            continue
                        if f.cancel():
                            # Never started: requeue without burning the
                            # attempt this pool charged it.
                            attempts[i] -= 1
                            result.attempts -= 1
                            retry_later.append(i)
                        elif not f.done():
                            settle(i, timeout_exc, "Timeout", retry_later)
                except BrokenProcessPool:
                    broken = True
                    for f, i in futures.items():
                        if i in recorded or i in retry_later:
                            continue
                        cell_exc = (
                            f.exception()
                            if f.done() and not f.cancelled()
                            else None
                        )
                        if f.done() and not f.cancelled() and cell_exc is None:
                            record(i, f.result())
                        elif cell_exc is not None and not isinstance(
                            cell_exc, BrokenProcessPool
                        ):
                            settle(
                                i, cell_exc, type(cell_exc).__name__,
                                retry_later,
                            )
                        else:
                            # Cannot tell the cell that killed the worker
                            # from an innocent sibling whose result was
                            # lost: refund the attempt and let the
                            # isolation round assign blame exactly.
                            f.cancel()
                            attempts[i] -= 1
                            result.attempts -= 1
                            retry_later.append(i)
                finally:
                    if broken:
                        kill_workers(pool)
                        result.pool_restarts += 1
                    pool.shutdown(wait=not broken, cancel_futures=True)
                return retry_later, broken

            def isolated_round(cells: list[int]) -> list[int]:
                """Post-crash mode: each in-flight cell gets its own
                single-worker pool (up to ``jobs`` pools in parallel), so a
                broken pool identifies the poisoned cell exactly."""
                retry_later: list[int] = []
                pools: dict[Future, tuple[int, ProcessPoolExecutor]] = {}
                iterator = iter(cells)

                def launch() -> bool:
                    i = next(iterator, None)
                    if i is None:
                        return False
                    attempts[i] += 1
                    result.attempts += 1
                    p = ProcessPoolExecutor(max_workers=1, mp_context=ctx)
                    pools[submit(p, i)] = (i, p)
                    return True

                for _ in range(jobs):
                    if not launch():
                        break
                while pools:
                    finished, _ = wait(
                        pools, timeout=timeout_s, return_when=FIRST_COMPLETED
                    )
                    if not finished:
                        timeout_exc = FutureTimeoutError(
                            f"no completion within {timeout_s:g}s"
                        )
                        for f, (i, p) in pools.items():
                            settle(i, timeout_exc, "Timeout", retry_later)
                            kill_workers(p)
                            p.shutdown(wait=False, cancel_futures=True)
                            result.pool_restarts += 1
                        pools.clear()
                        for _ in range(jobs):
                            if not launch():
                                break
                        continue
                    for f in finished:
                        i, p = pools.pop(f)
                        crashed = False
                        try:
                            record(i, f.result())
                        except BrokenProcessPool as exc:
                            crashed = True
                            settle(i, exc, "BrokenProcessPool", retry_later)
                        except Exception as exc:  # noqa: BLE001
                            settle(i, exc, type(exc).__name__, retry_later)
                        if crashed:
                            kill_workers(p)
                            result.pool_restarts += 1
                        p.shutdown(wait=not crashed, cancel_futures=True)
                        launch()
                return retry_later

            queue = list(pending)
            isolate = False
            while queue:
                if isolate:
                    queue = isolated_round(queue)
                else:
                    queue, crashed = batch_round(queue)
                    # After a crash, stay in isolation mode: correctness of
                    # blame beats shared-pool throughput once a worker has
                    # already died.
                    isolate = isolate or crashed
                if queue:
                    max_attempt = max(attempts[i] for i in queue)
                    _time.sleep(policy.delay_s(max_attempt, backoff_rng))
                    obs.count("sweep.retries", len(queue))
                    queue = sorted(queue)
        return finish()
    finally:
        if ckpt_fh is not None:
            ckpt_fh.close()


def run_sweep(
    fn: Callable,
    params: Sequence[object],
    jobs: int = 1,
    *,
    timeout_s: float | None = None,
    retries: int = 1,
    backoff_s: float = 0.05,
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
    backoff_jitter: float = DEFAULT_BACKOFF_JITTER,
    backoff_seed: int | None = 0,
    checkpoint: str | os.PathLike | None = None,
    telemetry_dir: str | os.PathLike | None = None,
    strict: bool = True,
) -> list:
    """Strict façade over :func:`run_sweep_robust`: returns the plain
    results list; if any cell ultimately failed it raises
    :class:`SweepError` — but only after the whole grid has been driven, so
    every completed sibling's result (and the checkpoint) survives."""
    res = run_sweep_robust(
        fn,
        params,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        backoff_cap_s=backoff_cap_s,
        backoff_jitter=backoff_jitter,
        backoff_seed=backoff_seed,
        checkpoint=checkpoint,
        telemetry_dir=telemetry_dir,
    )
    if strict and res.failures:
        raise SweepError(res.failures, res.results)
    return res.results


# -- demo cell for the CLI ---------------------------------------------------


def schedule_cell(
    window: int, seed: int, num_blocks: int = 3, lo: int = 4, hi: int = 7
) -> tuple[int, int, int, int, int]:
    """One cell of the CLI demo sweep (``repro sweep``): anticipatory vs
    per-block-local makespan on a seeded random trace at window W.  Module
    level so process pools can pickle it."""
    from ..core.lookahead import algorithm_lookahead, local_block_orders
    from ..machine.presets import paper_machine
    from ..sim.window import simulate_trace
    from ..workloads.traces import random_trace

    machine = paper_machine(window)
    trace = random_trace(
        num_blocks, (lo, hi), edge_probability=0.3,
        cross_probability=0.1, seed=seed,
    )
    anticipatory = simulate_trace(
        trace, algorithm_lookahead(trace, machine).block_orders, machine
    )
    local = simulate_trace(
        trace, local_block_orders(trace, machine), machine
    )
    return (
        window,
        seed,
        anticipatory.makespan,
        local.makespan,
        anticipatory.stall_cycles,
    )


def guarded_cell(
    window: int, seed: int, num_blocks: int = 3, lo: int = 4, hi: int = 7
) -> tuple[int, int, int, str, str]:
    """Fault-injected variant of :func:`schedule_cell` (``repro sweep
    --faults``): schedule a seeded random trace through
    :class:`~repro.robust.guard.GuardedScheduler` under a fault plan drawn
    deterministically from the default suite, then simulate the verified
    order under the same injection.  Exercises the full ``guard.*`` /
    ``faults.injected.*`` counter surface, and because the plan depends
    only on ``seed``, a ``jobs=1`` and a ``jobs=N`` run of the same grid
    inject byte-identical faults.  Returns ``(window, seed, makespan,
    source, plan_name)`` with ``makespan=-1`` when the injected adversity
    (deadlock, corrupted stream) stopped the simulation — the schedule
    itself is still verified-legal.  Module level so pools can pickle it."""
    from ..machine.presets import paper_machine
    from ..sim.window import SimulationDeadlock, simulate_trace
    from ..workloads.traces import random_trace
    from . import faults
    from .guard import GuardedScheduler

    machine = paper_machine(window)
    trace = random_trace(
        num_blocks, (lo, hi), edge_probability=0.3,
        cross_probability=0.1, seed=seed,
    )
    plans = faults.default_fault_plans(seed=seed)
    plan = plans[seed % len(plans)]
    guard = GuardedScheduler(machine=machine)
    with faults.injection(plan):
        guarded = guard.schedule(trace)
        try:
            sim = simulate_trace(trace, guarded.block_orders, machine)
            makespan = sim.makespan
        except (SimulationDeadlock, ValueError):
            makespan = -1
    return (window, seed, makespan, guarded.source, plan.name)
