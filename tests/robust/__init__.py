"""Tests for the robustness subsystem (fault injection, guarded
scheduling, crash-tolerant sweeps)."""
