"""Tests for the sampling profiler and flamegraph rendering."""

import pytest

from repro.obs.profiler import (
    SamplingProfiler,
    collapsed_stacks,
    flamegraph_html,
    parse_collapsed,
    profile,
    profile_overhead,
    write_flamegraph,
)


def _spin(ms: float = 120.0) -> int:
    """CPU-bound busy loop; the frame the profiler should catch."""
    import time

    total = 0
    deadline = time.process_time() + ms / 1000.0
    while time.process_time() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    @pytest.mark.parametrize("mode", ["thread", "itimer"])
    def test_collects_samples_on_cpu_bound_fn(self, mode):
        prof = SamplingProfiler(interval_s=0.002, mode=mode)
        with prof:
            _spin()
        assert prof.sample_count > 0
        assert prof.mode in ("thread", "itimer")
        leaves = {stack[-1] for stack in prof.samples}
        assert any("_spin" in leaf for leaf in leaves)
        # Stack roots point back at this test via pytest's runner.
        assert all(isinstance(s, tuple) and s for s in prof.samples)

    def test_auto_mode_resolves(self):
        prof = SamplingProfiler(interval_s=0.002)
        with prof:
            _spin(40)
        assert prof.mode in ("thread", "itimer")

    def test_one_profiler_per_process(self):
        outer = SamplingProfiler(interval_s=0.01, mode="thread")
        inner = SamplingProfiler(interval_s=0.01, mode="thread")
        with outer:
            with pytest.raises(RuntimeError, match="already"):
                inner.start()

    def test_reusable_after_stop(self):
        prof = SamplingProfiler(interval_s=0.002, mode="thread")
        with prof:
            _spin(30)
        first = prof.sample_count
        with prof:
            _spin(30)
        assert prof.sample_count >= first

    def test_profile_helper_returns_result_and_profiler(self):
        result, prof = profile(_spin, 60, interval_s=0.002, mode="thread")
        assert result == _spin(0.0) or result > 0
        assert prof.sample_count > 0

    def test_profile_overhead_is_small(self):
        overhead, prof = profile_overhead(
            lambda: _spin(50), repeat=2, interval_s=0.005, mode="thread"
        )
        assert prof.sample_count > 0
        # The ISSUE gate is <5% on the E10 workload with the default 5 ms
        # interval; in-test we only sanity-check it is not pathological.
        assert overhead < 0.50


class TestCollapsedStacks:
    SAMPLES = {
        ("main", "run", "hot"): 7,
        ("main", "run"): 2,
        ("main", "other;weird"): 1,
    }

    def test_roundtrip(self):
        text = collapsed_stacks(self.SAMPLES)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert "main;run;hot 7" in lines
        back = parse_collapsed(text)
        assert back[("main", "run", "hot")] == 7
        assert back[("main", "run")] == 2
        assert sum(back.values()) == sum(self.SAMPLES.values())

    def test_parse_skips_blank_and_malformed(self):
        assert parse_collapsed("\n\nnot-a-count abc\nmain;f 3\n") == {
            ("main", "f"): 3
        }


class TestFlamegraph:
    def test_html_contains_svg_and_frames(self):
        html = flamegraph_html(TestCollapsedStacks.SAMPLES, title="unit test")
        assert "<svg" in html and "</html>" in html
        assert "unit test" in html
        assert "hot" in html
        # Self-contained: no external scripts or stylesheets.
        assert "<script src" not in html and "<link" not in html

    def test_deterministic(self):
        a = flamegraph_html(TestCollapsedStacks.SAMPLES)
        b = flamegraph_html(TestCollapsedStacks.SAMPLES)
        assert a == b

    def test_empty_samples_still_renders(self):
        html = flamegraph_html({})
        assert "<html" in html and "no samples" in html.lower()

    def test_write_flamegraph(self, tmp_path):
        out = write_flamegraph(
            tmp_path / "flame.html", TestCollapsedStacks.SAMPLES
        )
        assert out.exists()
        assert "<svg" in out.read_text()

    def test_real_profile_renders(self):
        _, prof = profile(_spin, 60, interval_s=0.002, mode="thread")
        html = flamegraph_html(prof.samples)
        assert "_spin" in html


class TestTargetThread:
    def test_profiles_a_specific_thread(self):
        import threading

        done = threading.Event()
        started = threading.Event()
        ident = {}

        def worker():
            ident["tid"] = threading.get_ident()
            started.set()
            _spin(150)
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        started.wait(5)
        prof = SamplingProfiler(
            interval_s=0.002, target_thread_id=ident["tid"]
        )
        prof.start()
        done.wait(10)
        prof.stop()
        t.join()
        assert prof.samples
        assert any(
            any(frame.endswith("_spin") for frame in stack)
            for stack in prof.samples
        )

    def test_target_thread_forces_thread_mode(self):
        prof = SamplingProfiler(target_thread_id=123)
        assert prof._resolve_mode() == "thread"

    def test_target_thread_incompatible_with_itimer(self):
        with pytest.raises(ValueError, match="itimer"):
            SamplingProfiler(mode="itimer", target_thread_id=123)
