"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workloads.paper_examples import FIG3_TEXT

TWO_BLOCK = """
block top
  a op=li  defs=r1 lat=1
  b op=li  defs=r2 lat=1
  c op=mul defs=r3 uses=r1,r2 lat=4
block bottom
  d op=add defs=r4 uses=r3 lat=1
"""


@pytest.fixture
def prog(tmp_path):
    p = tmp_path / "prog.s"
    p.write_text(TWO_BLOCK)
    return str(p)


@pytest.fixture
def fig3(tmp_path):
    p = tmp_path / "fig3.s"
    p.write_text(FIG3_TEXT)
    return str(p)


class TestSchedule:
    def test_default_anticipatory(self, prog, capsys):
        assert main(["schedule", prog]) == 0
        out = capsys.readouterr().out
        assert "top:" in out and "bottom:" in out

    def test_simulate_flag(self, prog, capsys):
        assert main(["schedule", prog, "--simulate", "-w", "2"]) == 0
        out = capsys.readouterr().out
        assert "completion:" in out and "W=2" in out

    @pytest.mark.parametrize(
        "sched", ["anticipatory", "local", "critical-path", "source"]
    )
    def test_all_schedulers(self, prog, capsys, sched):
        assert main(["schedule", prog, "--scheduler", sched]) == 0

    def test_machine_choices(self, prog):
        for machine in ("paper", "inorder", "rs6000", "vliw"):
            assert main(["schedule", prog, "--machine", machine]) == 0

    def test_missing_file(self, capsys):
        assert main(["schedule", "/nonexistent/x.s"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("block A\n x wat=1\n")
        assert main(["schedule", str(bad)]) == 2
        assert "parse error" in capsys.readouterr().err


class TestFuzz:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault-injection fuzz" in out
        assert "TOTAL" in out

    def test_json_report(self, capsys):
        assert main(["fuzz", "--seeds", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["num_cells"] > 0
        assert "by_fault" in doc

    def test_min_cells_gate(self, capsys):
        assert main(["fuzz", "--seeds", "1", "--min-cells", "100000"]) == 1
        assert "--min-cells" in capsys.readouterr().err

    def test_budget_stops_early(self, capsys):
        assert main(["fuzz", "--seeds", "500", "--budget-s", "0.05"]) == 0
        assert "budget hit" in capsys.readouterr().out


class TestSweep:
    def test_table_and_exit_zero(self, capsys):
        assert main(["sweep", "--windows", "2,3", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "anticipatory" in out and "4/4 completed" in out

    def test_malformed_windows(self, capsys):
        assert main(["sweep", "--windows", "2,x"]) == 2
        assert "malformed --windows" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["sweep", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.jsonl")
        full, partial, resumed = (
            str(tmp_path / name)
            for name in ("full.txt", "partial.txt", "resumed.txt")
        )
        grid = ["--windows", "2,3", "--seeds", "3"]
        assert main(["sweep", *grid, "--output", full]) == 0
        # "Interrupt" a checkpointed sweep after its first window...
        assert main(
            ["sweep", "--windows", "2", "--seeds", "3",
             "--checkpoint", ck, "--output", partial]
        ) == 0
        # ...then resume the full grid from the same checkpoint.
        assert main(
            ["sweep", *grid, "--checkpoint", ck, "--resume",
             "--output", resumed]
        ) == 0
        out = capsys.readouterr().out
        assert "3 resumed" in out
        with open(full, "rb") as a, open(resumed, "rb") as b:
            assert a.read() == b.read()

    def test_fresh_sweep_clears_stale_checkpoint(self, tmp_path, capsys):
        ck = tmp_path / "ck.jsonl"
        ck.write_text('{"v": 1, "index": 0, "pickle": "garbage"}\n')
        assert main(
            ["sweep", "--windows", "2", "--seeds", "1", "--checkpoint", str(ck)]
        ) == 0
        assert "0 resumed" in capsys.readouterr().out


class TestRanks:
    def test_ranks_table(self, fig3, capsys):
        assert main(["ranks", fig3, "--deadline", "100"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out and "BT" in out

    def test_deadline_overrides_change_ranks(self, prog, capsys):
        assert main(["ranks", prog, "--deadline", "100"]) == 0
        base = capsys.readouterr().out
        assert main(["ranks", prog, "--deadline", "100",
                     "--deadlines", "d=5"]) == 0
        tightened = capsys.readouterr().out
        assert base != tightened

    def test_unknown_deadline_name_is_an_error(self, prog, capsys):
        assert main(["ranks", prog, "--deadlines", "nope=5"]) == 2
        err = capsys.readouterr().err
        assert "unknown nodes" in err and "nope" in err

    def test_malformed_deadline_entry_is_an_error(self, prog, capsys):
        assert main(["ranks", prog, "--deadlines", "d"]) == 2
        assert "malformed" in capsys.readouterr().err
        assert main(["ranks", prog, "--deadlines", "d=x"]) == 2
        assert "malformed" in capsys.readouterr().err


class TestLoop:
    def test_figure3_loop(self, fig3, capsys):
        assert main(["loop", fig3, "-w", "1", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "chosen order: L4 ST M C4 BT" in out
        assert "steady-state II: 6" in out

    def test_rejects_multiblock(self, prog, capsys):
        assert main(["loop", prog]) == 2
        assert "single-block" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()


class TestTrace:
    def test_schedule_with_trace_writes_jsonl_and_chrome(
        self, prog, tmp_path, capsys
    ):
        jsonl = tmp_path / "run.jsonl"
        assert main(["schedule", prog, "-w", "2", "--trace", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "trace: wrote" in out
        chrome = tmp_path / "run.chrome.json"
        assert jsonl.exists() and chrome.exists()

        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"rank", "merge", "delay_idle_slots", "chop"} <= span_names
        sim_kinds = {r["kind"] for r in records if r["type"] == "sim"}
        assert "issue" in sim_kinds and "stall" in sim_kinds

        json.loads(chrome.read_text())  # valid Chrome trace JSON

    def test_trace_subcommand_replays_timeline(self, prog, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert main(["schedule", prog, "-w", "2", "--trace", str(jsonl)]) == 0
        sched_out = capsys.readouterr().out
        stalls = int(sched_out.split("stalls: ")[1].split(",")[0])

        assert main(["trace", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "issue" in out
        assert f"{stalls} stall cycles" in out

    def test_trace_subcommand_rejects_non_trace_file(self, prog, capsys):
        assert main(["trace", prog]) == 2
        assert "not a repro trace" in capsys.readouterr().err

    def test_trace_renders_request_waterfall(self, tmp_path, capsys):
        from repro.machine.presets import PAPER_CORE
        from repro.serve.protocol import ScheduleRequest
        from repro.serve.service import ScheduleService
        from repro.workloads.traces import random_trace

        svc = ScheduleService()
        request = ScheduleRequest(
            trace=random_trace(2, (3, 4), cross_probability=0.2, seed=1),
            machine=PAPER_CORE,
            trace_id="cafef00d",
        )
        assert svc.handle(request.to_dict())["ok"]
        retained = svc.tracebuf.recent()[-1]
        path = tmp_path / "wf.jsonl"
        path.write_text(
            "\n".join(
                json.dumps(r) for r in retained.waterfall_records()
            ) + "\n"
        )
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "request cafef00d" in out
        assert "serve.phase.dispatch" in out
        assert "serve.worker.schedule" in out
        assert "1 request waterfall(s)" in out


@pytest.fixture
def report_pair(tmp_path):
    """Two RunReport files: a baseline and an identical copy."""
    from repro.obs import RunReport

    base = RunReport(
        name="bench",
        metrics={"makespan": 11, "stalls": 2, "runs": [{"wall_s": 1.0}]},
        phases={"rank": 0.25, "merge": 0.05},
        provenance={"seed": 0},
    )
    base_path = tmp_path / "baseline.json"
    new_path = tmp_path / "new.json"
    base.write(base_path)
    base.write(new_path)
    return base, base_path, new_path


class TestReport:
    def test_report_on_runreport_json(self, report_pair, capsys):
        _, base_path, _ = report_pair
        assert main(["report", str(base_path)]) == 0
        out = capsys.readouterr().out
        assert "bench" in out and "makespan" in out
        assert "rank" in out  # phases table

    def test_report_markdown(self, report_pair, capsys):
        _, base_path, _ = report_pair
        assert main(["report", str(base_path), "--markdown"]) == 0
        assert "| metric |" in capsys.readouterr().out

    def test_report_on_trace_jsonl(self, prog, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert main(["schedule", prog, "-w", "2", "--trace", str(jsonl)]) == 0
        capsys.readouterr()
        assert main(["report", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "sim.cycles" in out and "sim.stall." in out
        assert "stall attribution" in out

    def test_report_rejects_non_report(self, prog, capsys):
        assert main(["report", prog]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/r.json"]) == 2


class TestCompare:
    def test_identical_reports_exit_zero(self, report_pair, capsys):
        _, base_path, new_path = report_pair
        assert main(["compare", str(base_path), str(new_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_makespan_regression_exits_nonzero(
        self, report_pair, capsys
    ):
        base, base_path, new_path = report_pair
        base.metrics["makespan"] = 13  # injected regression
        base.write(new_path)
        assert main(["compare", str(base_path), str(new_path)]) == 1
        out = capsys.readouterr().out
        assert "makespan" in out and "FAIL" in out

    def test_wall_time_respects_threshold(self, report_pair, capsys):
        base, base_path, new_path = report_pair
        base.metrics["runs"] = [{"wall_s": 1.4}]
        base.write(new_path)
        assert main(["compare", str(base_path), str(new_path),
                     "--threshold", "50"]) == 0
        assert main(["compare", str(base_path), str(new_path),
                     "--threshold", "10"]) == 1

    def test_negative_threshold_is_an_error(self, report_pair, capsys):
        _, base_path, new_path = report_pair
        assert main(["compare", str(base_path), str(new_path),
                     "--threshold", "-5"]) == 2
        assert "threshold" in capsys.readouterr().err

    def test_missing_baseline_is_an_error(self, report_pair, capsys):
        _, _, new_path = report_pair
        assert main(["compare", "/nonexistent/b.json", str(new_path)]) == 2


class TestDot:
    def test_trace_dot_to_stdout(self, prog, capsys):
        assert main(["dot", prog]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_loop_dot_to_file(self, fig3, tmp_path, capsys):
        out_path = tmp_path / "g.dot"
        assert main(["dot", fig3, "--loop", "-o", str(out_path)]) == 0
        assert "digraph" in out_path.read_text()
        assert "wrote" in capsys.readouterr().out


class TestSweepTelemetry:
    def test_faults_table_and_spool(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        assert main(
            ["sweep", "--faults", "--windows", "3", "--seeds", "3",
             "--spool-dir", str(spool)]
        ) == 0
        out = capsys.readouterr().out
        assert "fault plan" in out and "3/3 completed" in out
        assert "telemetry:" in out
        assert list(spool.glob("spool-*.jsonl"))

    def test_report_written_without_spool_dir(self, tmp_path, capsys):
        report = tmp_path / "sweep.json"
        assert main(
            ["sweep", "--faults", "--windows", "3", "--seeds", "2",
             "--report", str(report)]
        ) == 0
        doc = json.loads(report.read_text())
        metrics = doc["metrics"]
        assert metrics["cells"] == 2 and metrics["failures"] == 0
        assert any(k.startswith("guard.") for k in metrics)
        assert any(k.startswith("span.") and k.endswith(".count")
                   for k in metrics)
        assert doc["provenance"]["jobs"] == 1


class TestFlame:
    def test_default_workload_writes_flamegraph(self, tmp_path, capsys):
        out_path = tmp_path / "flame.html"
        collapsed = tmp_path / "stacks.txt"
        assert main(
            ["flame", "--repeat", "2", "-o", str(out_path),
             "--collapsed", str(collapsed)]
        ) == 0
        out = capsys.readouterr().out
        assert "E10 workload" in out and "wrote" in out
        assert "<svg" in out_path.read_text()
        text = collapsed.read_text().strip()
        assert all(line.rsplit(" ", 1)[1].isdigit()
                   for line in text.splitlines())

    def test_profiles_a_program_file(self, prog, tmp_path, capsys):
        out_path = tmp_path / "flame.html"
        assert main(
            ["flame", prog, "--repeat", "2", "-o", str(out_path)]
        ) == 0
        assert out_path.exists()

    def test_max_overhead_gate_fails_when_exceeded(self, tmp_path, capsys):
        # An impossible budget: any nonzero overhead exceeds it.
        rc = main(
            ["flame", "--repeat", "2", "-o", str(tmp_path / "f.html"),
             "--max-overhead", "0"]
        )
        captured = capsys.readouterr()
        if rc == 1:
            assert "exceeds --max-overhead" in captured.err
        else:  # measured overhead can legitimately be <= 0 on a noisy box
            assert rc == 0


def _make_spool(tmp_path):
    spool = tmp_path / "spool"
    assert main(
        ["sweep", "--faults", "--windows", "3", "--seeds", "2",
         "--spool-dir", str(spool)]
    ) == 0
    return spool


class TestMetricsExposition:
    def test_prometheus_output(self, tmp_path, capsys):
        spool = _make_spool(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(spool)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_guard_schedule_total counter" in out
        assert 'trace_id="' in out
        cells = [ln for ln in out.splitlines()
                 if ln.startswith("repro_cells_total{")]
        assert cells and cells[0].endswith(" 2")

    def test_output_file_and_namespace(self, tmp_path, capsys):
        spool = _make_spool(tmp_path)
        prom = tmp_path / "m.prom"
        assert main(
            ["metrics", str(spool), "--namespace", "spaa", "-o", str(prom)]
        ) == 0
        assert "spaa_guard_schedule_total" in prom.read_text()

    def test_missing_dir_is_usage_error(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err


class TestTop:
    def test_single_frame(self, tmp_path, capsys):
        spool = _make_spool(tmp_path)
        capsys.readouterr()
        assert main(
            ["top", str(spool), "--interval", "0", "--frames", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "cells 2 (2 ok)" in out
        assert "sweep.cell" in out and "guard.schedule" in out

    def test_missing_dir_is_usage_error(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_spool_dir_and_no_connect_is_usage_error(self, capsys):
        assert main(["top"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_connect_to_absent_daemon_fails_cleanly(self, tmp_path, capsys):
        assert main(["top", "--connect", str(tmp_path / "no.sock"),
                     "--frames", "1"]) == 2
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_connect_to_live_daemon_renders_frame(self, tmp_path, capsys):
        from repro.machine.presets import PAPER_CORE
        from repro.serve.daemon import ScheduleServer, ServerHandle
        from repro.serve.protocol import ScheduleRequest
        from repro.serve.service import ScheduleService
        from repro.workloads.traces import random_trace

        service = ScheduleService()
        srv = ScheduleServer(
            service, socket_path=tmp_path / "s.sock", batch_window_s=0.001
        )
        with ServerHandle(srv):
            doc = ScheduleRequest(
                trace=random_trace(2, (3, 4), cross_probability=0.2, seed=2),
                machine=PAPER_CORE,
            ).to_dict()
            from repro.serve.client import ScheduleClient

            with ScheduleClient(srv.socket_path) as client:
                assert client.call(doc)["ok"]
            capsys.readouterr()
            assert main(["top", "--connect", str(srv.socket_path),
                         "--interval", "0", "--frames", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "requests 1" in out
