"""Global (cross-block) scheduling comparators (paper §6, refs [4], [7]).

Anticipatory scheduling deliberately keeps instructions inside their basic
blocks.  To quantify what that safety costs, the benchmarks compare against
schedulers that are allowed to move code across block boundaries:

* :func:`global_upper_bound` — schedule the *entire trace graph* as one
  giant basic block with the Rank Algorithm, ignoring block boundaries
  altogether.  This is the completion time unrestricted (unsafe,
  unserviceable) global code motion could reach; no window model applies
  because the compiler itself realizes all the overlap.
* :func:`speculative_block_orders` — a bounded Bernstein-Rodeh-style
  speculative mover: instructions may be hoisted into the immediately
  preceding block's idle slots when they have no side effects there
  (modelled as: the hoisted instruction has no dependence predecessor in its
  own block).  Emits per-block orders whose block assignment has changed —
  i.e. an *unsafe* compiler output that the window simulator can still
  execute for comparison.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock, Trace, block_from_graph
from ..machine.model import MachineModel, single_unit_machine
from ..core.rank import minimum_makespan_schedule
from ..core.schedule import Schedule


def global_upper_bound(
    trace: Trace, machine: MachineModel | None = None
) -> Schedule:
    """Rank-Algorithm schedule of the whole trace graph as one block."""
    machine = machine or single_unit_machine()
    return minimum_makespan_schedule(trace.graph, machine)


def speculative_trace(
    trace: Trace, machine: MachineModel | None = None, max_hoist: int | None = None
) -> Trace:
    """Return a new trace in which hoistable instructions have been moved one
    block earlier (speculation below a branch is modelled as simply
    re-homing the instruction; the paper's [4] discusses when this is safe).

    An instruction is hoistable when every dependence predecessor lives in a
    strictly earlier block than its own — executing it before its block's
    entry branch cannot violate a data dependence.  ``max_hoist`` bounds how
    many instructions move per block (None = unlimited).
    """
    machine = machine or single_unit_machine()
    graph = trace.graph
    new_members: list[list[str]] = [list(bb.node_names) for bb in trace.blocks]
    for i in range(1, trace.num_blocks):
        moved = 0
        for n in list(new_members[i]):
            preds = graph.predecessors(n)
            if all(trace.block_index(p) < i for p in preds):
                new_members[i].remove(n)
                new_members[i - 1].append(n)
                moved += 1
                if max_hoist is not None and moved >= max_hoist:
                    break
    blocks: list[BasicBlock] = []
    for i, members in enumerate(new_members):
        blocks.append(
            block_from_graph(f"{trace.blocks[i].name}+spec", graph.subgraph(members))
        )
    cross = [
        (u, v, lat)
        for u, v, lat in graph.edges()
        if _home(new_members, u) < _home(new_members, v)
    ]
    return Trace(blocks, cross_edges=cross)


def _home(members: list[list[str]], node: str) -> int:
    for i, m in enumerate(members):
        if node in m:
            return i
    raise KeyError(node)  # pragma: no cover - construction covers all nodes
