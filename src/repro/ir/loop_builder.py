"""Derive loop dependence graphs from instruction sequences.

Given the body of a single-basic-block loop as an instruction sequence, this
module derives both the loop-independent (distance 0) and the loop-carried
(distance ≥ 1) dependences by running the def-use analysis across a virtual
iteration boundary: instruction ``u`` of iteration k and instruction ``v`` of
iteration k+d conflict exactly as in straight-line code.

Only the *nearest* dependence is recorded for each (u, v) pair and kind:
if ``u`` writes r1, ``v`` reads r1, and some instruction between them (in the
wrap-around order) also writes r1, the carried edge u→v is superseded —
matching what a compiler's reaching-definitions analysis would produce.

The derivation reproduces the hand-written edge list of the paper's Figure 3
(see ``tests/ir/test_loop_builder.py``).
"""

from __future__ import annotations

from typing import Sequence

from .builder import _mem_conflict
from .instruction import Instruction
from .loopgraph import LoopGraph


def _last_writer_between(
    instructions: Sequence[Instruction], reg: str, start: int, end_wrapped: int
) -> bool:
    """True iff some instruction strictly between position ``start`` (excl.)
    and ``end_wrapped`` (excl., measured in the unrolled order ``start <
    ... < len + end_wrapped``) writes ``reg``.  Used to keep only nearest
    dependences."""
    n = len(instructions)
    for pos in range(start + 1, n + end_wrapped):
        inst = instructions[pos % n]
        if reg in inst.writes:
            return True
    return False


def build_loop_graph(
    instructions: Sequence[Instruction],
    max_distance: int = 1,
) -> LoopGraph:
    """Build a :class:`LoopGraph` for a single-block loop body.

    Distance-0 edges are exactly :func:`repro.ir.builder
    .build_dependence_graph`'s output (including control dependences onto a
    terminating branch).  Distance-1 edges connect iteration k to k+1
    wherever a register or memory conflict survives intervening kills.
    ``max_distance`` > 1 is accepted but conservative: all carried register
    dependences are nearest, hence distance 1; memory conflicts are likewise
    modelled at distance 1 (a compiler without array dependence analysis
    must assume the nearest iteration may conflict).
    """
    if max_distance < 1:
        raise ValueError("max_distance must be >= 1")
    seq = list(instructions)
    n = len(seq)
    if n == 0:
        raise ValueError("loop body must be non-empty")

    g = LoopGraph()
    for inst in seq:
        g.add_node(inst.name, exec_time=inst.exec_time, fu_class=inst.fu_class)

    # Intra-iteration (distance 0) — same rules as straight-line code.
    for j, v in enumerate(seq):
        for i in range(j):
            u = seq[i]
            lat = _conflict_latency(u, v)
            if v.is_branch and lat is None:
                lat = 0
            if lat is not None:
                g.add_edge(u.name, v.name, lat, 0)

    # Cross-iteration (distance 1): u in iteration k at position i, v in
    # iteration k+1 at position j — every pair, including i >= j and i == j
    # (self dependences, e.g. induction variables).
    for i, u in enumerate(seq):
        for j, v in enumerate(seq):
            lat = _carried_conflict_latency(seq, i, j)
            if lat is not None:
                g.add_edge(u.name, v.name, lat, 1)
    return g


def _conflict_latency(u: Instruction, v: Instruction) -> int | None:
    """Dependence latency between earlier ``u`` and later ``v`` (or None)."""
    lat: int | None = None
    if set(u.writes) & set(v.reads):
        lat = u.latency
    elif set(u.writes) & set(v.writes) or set(u.reads) & set(v.writes):
        lat = 0
    if _mem_conflict(u.stores, v.loads):
        lat = max(lat if lat is not None else 0, u.latency)
    elif _mem_conflict(u.stores, v.stores) or _mem_conflict(u.loads, v.stores):
        lat = max(lat if lat is not None else 0, 0)
    return lat


def _carried_conflict_latency(
    seq: Sequence[Instruction], i: int, j: int
) -> int | None:
    """Latency of the carried dependence from seq[i]@k to seq[j]@k+1, with
    nearest-definition filtering for register RAW edges (an intervening
    write to the register kills the dependence)."""
    u, v = seq[i], seq[j]
    lat: int | None = None
    raw_regs = set(u.writes) & set(v.reads)
    live_raw = {
        r for r in raw_regs if not _last_writer_between(seq, r, i, j)
    }
    if live_raw:
        lat = u.latency
    elif set(u.writes) & set(v.writes) or set(u.reads) & set(v.writes):
        lat = 0
    if _mem_conflict(u.stores, v.loads):
        lat = max(lat if lat is not None else 0, u.latency)
    elif _mem_conflict(u.stores, v.stores) or _mem_conflict(u.loads, v.stores):
        lat = max(lat if lat is not None else 0, 0)
    return lat
