"""Unit tests for the global-scheduling comparators."""

import pytest

from repro.core import algorithm_lookahead
from repro.machine import paper_machine
from repro.schedulers import global_upper_bound, speculative_trace
from repro.sim import simulate_trace
from repro.workloads import figure2_trace, random_trace


class TestGlobalUpperBound:
    def test_figure2(self):
        t = figure2_trace(with_cross_edge=True)
        s = global_upper_bound(t, paper_machine(2))
        s.validate()
        assert s.makespan == 11  # anticipatory matches global here

    @pytest.mark.parametrize("seed", range(6))
    def test_bound_never_above_simulated_anticipatory(self, seed):
        t = random_trace(3, (3, 6), cross_probability=0.1, seed=seed)
        m = paper_machine(2)
        bound = global_upper_bound(t, m).makespan
        res = algorithm_lookahead(t, m)
        sim = simulate_trace(t, res.block_orders, m)
        assert bound <= sim.makespan


class TestSpeculativeTrace:
    def test_hoists_independent_instruction(self):
        from repro.ir import Trace, block_from_graph, graph_from_edges

        g1 = graph_from_edges([("a", "b", 1)])
        g2 = graph_from_edges([], nodes=["c", "d"])
        t = Trace(
            [block_from_graph("B1", g1), block_from_graph("B2", g2)],
            cross_edges=[("a", "c", 1)],
        )
        spec = speculative_trace(t, paper_machine(2))
        # d has no predecessors at all: hoisted into block 1.  c depends
        # only on block-1 instructions: also hoistable.
        assert spec.block_index("d") == 0
        assert spec.block_index("c") == 0

    def test_max_hoist_limits_motion(self):
        from repro.ir import Trace, block_from_graph, graph_from_edges

        g1 = graph_from_edges([], nodes=["a"])
        g2 = graph_from_edges([], nodes=["c", "d", "e"])
        t = Trace([block_from_graph("B1", g1), block_from_graph("B2", g2)])
        spec = speculative_trace(t, paper_machine(2), max_hoist=1)
        moved = sum(1 for n in ["c", "d", "e"] if spec.block_index(n) == 0)
        assert moved == 1

    def test_speculative_not_slower_when_simulated(self):
        t = figure2_trace(with_cross_edge=True)
        m = paper_machine(2)
        spec = speculative_trace(t, m)
        base_orders = [list(t.block_nodes(i)) for i in range(t.num_blocks)]
        spec_orders = [list(spec.block_nodes(i)) for i in range(spec.num_blocks)]
        base = simulate_trace(t, base_orders, m).makespan
        after = simulate_trace(spec, spec_orders, m).makespan
        assert after <= base + 1  # hoisting should not hurt materially
