"""Robustness subsystem: fault injection, guarded scheduling, crash-tolerant
sweeps (see ``docs/RELIABILITY.md``).

Three layers:

- :mod:`repro.robust.faults` — seeded :class:`FaultPlan` perturbations of
  the simulated runtime (latency jitter, window wobble, forced mispredicts,
  stream corruption, spurious deadlocks), installed with :func:`injection`
  and consulted by :mod:`repro.sim.window` behind a no-op default;
- :mod:`repro.robust.guard` — :class:`GuardedScheduler`, wrapping Algorithm
  Lookahead with node/time budgets and post-hoc verification; any failure
  degrades to the always-legal per-block rank order, recorded as a
  :class:`DegradedResult` and an obs counter;
- :mod:`repro.robust.sweep` — :func:`run_sweep_robust`, an experiment-sweep
  driver with per-cell timeouts, bounded retry, worker-crash isolation and
  JSONL checkpoint/resume;

plus :mod:`repro.robust.fuzz`, the differential fuzz driver that runs the
scheduler zoo under every fault plan and checks invariants.

Only :mod:`.faults` is imported eagerly (the simulator consults it on every
run); the heavier layers load lazily on first attribute access so that
``import repro.sim`` stays light.
"""

from __future__ import annotations

from .faults import (
    FaultPlan,
    FaultState,
    active_plan,
    default_fault_plans,
    fault_state,
    injection,
    perturbed_machine,
    set_plan,
    suspended,
)

__all__ = [
    "DegradedResult",
    "ExecutionPool",
    "FaultPlan",
    "FaultState",
    "FuzzReport",
    "GuardedResult",
    "GuardedScheduler",
    "PoolConfig",
    "RetryPolicy",
    "SweepError",
    "SweepFailure",
    "SweepResult",
    "active_plan",
    "default_fault_plans",
    "fault_state",
    "injection",
    "perturbed_machine",
    "run_fuzz",
    "run_sweep_robust",
    "set_plan",
    "suspended",
]

_LAZY = {
    "DegradedResult": ("guard", "DegradedResult"),
    "ExecutionPool": ("pool", "ExecutionPool"),
    "PoolConfig": ("pool", "PoolConfig"),
    "RetryPolicy": ("backoff", "RetryPolicy"),
    "GuardedResult": ("guard", "GuardedResult"),
    "GuardedScheduler": ("guard", "GuardedScheduler"),
    "FuzzReport": ("fuzz", "FuzzReport"),
    "run_fuzz": ("fuzz", "run_fuzz"),
    "SweepError": ("sweep", "SweepError"),
    "SweepFailure": ("sweep", "SweepFailure"),
    "SweepResult": ("sweep", "SweepResult"),
    "run_sweep_robust": ("sweep", "run_sweep_robust"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attr)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
