"""Hennessy-Gross postpass scheduler (paper §6, ref. [9]).

Hennessy & Gross schedule basic blocks to avoid pipeline interlocks with an
O(n⁴) algorithm whose heart is *one-step lookahead*: when several
instructions are ready, prefer the one whose issue leaves the machine
something to do next cycle (no interlock), using the dependence DAG to
predict which successors become ready.  This reconstruction implements that
selection rule as a dynamic greedy:

score(candidate) = number of instructions ready in the *next* cycle if the
candidate issues now; ties fall back to critical path and program order.
"""

from __future__ import annotations

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from ..core.schedule import Schedule, Unit


def hennessy_gross_schedule(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """One-step interlock-avoiding greedy (single-issue per unit)."""
    machine = machine or single_unit_machine()
    if not machine.can_execute(graph):
        raise ValueError("machine lacks a functional unit for some instruction")
    dist = graph.path_length_to_sinks()
    index = {n: i for i, n in enumerate(graph.nodes)}

    npred = {n: len(graph.predecessors(n)) for n in graph.nodes}
    est = {n: 0 for n in graph.nodes}
    starts: dict[str, int] = {}
    units: dict[str, Unit] = {}
    unit_free_at: dict[Unit, int] = {u: 0 for u in machine.unit_names()}
    width = machine.issue_width or machine.total_units

    def ready_at(t: int) -> list[str]:
        return [
            n
            for n in graph.nodes
            if n not in starts and npred[n] == 0 and est[n] <= t
        ]

    def lookahead_score(candidate: str, t: int) -> int:
        """How many instructions are issueable at t+1 if candidate issues
        at t (the interlock-avoidance criterion)."""
        completion = t + graph.exec_time(candidate)
        count = 0
        for n in graph.nodes:
            if n in starts or n == candidate:
                continue
            if npred[n] == 0 and est[n] <= t + 1:
                count += 1
            elif npred[n] == 1 and candidate in graph.predecessors(n):
                lat = graph.predecessors(n)[candidate]
                if max(est[n], completion + lat) <= t + 1:
                    count += 1
        return count

    time = 0
    remaining = len(graph)
    while remaining > 0:
        issued = 0
        candidates = ready_at(time)
        candidates.sort(
            key=lambda n: (
                -lookahead_score(n, time),
                -dist[n],
                index[n],
            )
        )
        for n in candidates:
            unit = next(
                (
                    u
                    for u in machine.units_for(graph.fu_class(n))
                    if unit_free_at[u] <= time
                ),
                None,
            )
            if unit is None:
                continue
            starts[n] = time
            units[n] = unit
            completion = time + graph.exec_time(n)
            unit_free_at[unit] = completion
            remaining -= 1
            for s, lat in graph.successors(n).items():
                npred[s] -= 1
                est[s] = max(est[s], completion + lat)
            issued += 1
            if issued >= width:
                break
        if remaining == 0:
            break
        if ready_at(time):
            time += 1
            continue
        events = [est[n] for n in graph.nodes if n not in starts and npred[n] == 0]
        events += [t for t in unit_free_at.values() if t > time]
        future = [t for t in events if t > time]
        if not future:  # pragma: no cover - defensive
            raise RuntimeError("scheduling stalled")
        time = min(future)
    return Schedule(graph, starts, units)


def hennessy_gross_order(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> list[str]:
    return hennessy_gross_schedule(graph, machine).permutation()
